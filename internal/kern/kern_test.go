package kern

import (
	"errors"
	"strings"
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/layout"
	"hemlock/internal/linker"
	"hemlock/internal/objfile"
	"hemlock/internal/shmfs"
)

// buildImage assembles a self-contained program into a load image at the
// standard text base.
func buildImage(t *testing.T, src string) *objfile.Image {
	t.Helper()
	o, err := isa.Assemble("prog.s", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := linker.Place(o, layout.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	img := p.Image()
	pending, err := p.RelocateInternal(&linker.BytesPatcher{Base: layout.TextBase, B: img})
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("test image has unresolved refs: %v", pending)
	}
	dataOff, _ := o.Layout()
	im := &objfile.Image{
		Name:     "a.out",
		Entry:    layout.TextBase,
		TextBase: layout.TextBase,
		Text:     img[:dataOff],
		DataBase: layout.TextBase + dataOff,
		Data:     img[dataOff:],
		BssBase:  layout.TextBase + uint32(len(img)),
		BssSize:  p.Size() - uint32(len(img)),
	}
	return im
}

func TestExecAndRunHalt(t *testing.T) {
	k := New()
	p := k.Spawn(100)
	im := buildImage(t, `
        .text
        li      $t0, 123
        halt
`)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if !p.Exited || p.ExitCode != 0 {
		t.Fatalf("exited=%v code=%d", p.Exited, p.ExitCode)
	}
}

func TestSyscallWriteConsoleAndExit(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 2          # write
        li      $a0, 1          # stdout
        la      $a1, msg
        li      $a2, 5
        syscall
        li      $v0, 1          # exit
        li      $a0, 7
        syscall
        .data
msg:    .asciiz "hello"
`)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if p.Stdout.String() != "hello" {
		t.Fatalf("stdout = %q", p.Stdout.String())
	}
	if p.ExitCode != 7 {
		t.Fatalf("exit code = %d", p.ExitCode)
	}
}

func TestSyscallGetPID(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 3
        syscall
        halt
`)
	p.Exec(im)
	k.Run(p, 100)
	if p.CPU.Regs[isa.RegV0] != uint32(p.PID) {
		t.Fatalf("getpid = %d, want %d", p.CPU.Regs[isa.RegV0], p.PID)
	}
}

func TestFileSyscalls(t *testing.T) {
	k := New()
	k.FS.Create("/note", shmfs.DefaultFileMode, 0)
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        # fd = open("/note", writable)
        li      $v0, 4
        la      $a0, path
        li      $a1, 1
        syscall
        move    $s0, $v0
        # write(fd, "data", 4)
        li      $v0, 2
        move    $a0, $s0
        la      $a1, body
        li      $a2, 4
        syscall
        # close(fd)
        li      $v0, 5
        move    $a0, $s0
        syscall
        halt
        .data
path:   .asciiz "/note"
body:   .ascii  "data"
`)
	p.Exec(im)
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	got, err := k.FS.ReadFile("/note", 0)
	if err != nil || string(got) != "data" {
		t.Fatalf("file contents %q, %v", got, err)
	}
}

func TestAddrToPathSyscall(t *testing.T) {
	k := New()
	st, _ := k.FS.Create("/seg", shmfs.DefaultFileMode, 0)
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 9          # shm_addr_to_path
        lui     $a0, 0x3000     # will be patched below
        la      $a1, buf
        li      $a2, 64
        syscall
        # print the returned path to the console
        li      $v0, 2
        li      $a0, 1
        la      $a1, buf
        li      $a2, 4
        syscall
        halt
        .data
buf:    .space 64
`)
	p.Exec(im)
	// Patch the `lui $a0` immediate (the 3rd instruction: li is a
	// two-instruction pseudo) to the file's slot upper half.
	w, _ := p.AS.LoadWord(layout.TextBase + 8)
	if isa.Decode(w).Op != isa.OpLUI {
		t.Fatalf("instruction at +8 is not lui: %s", isa.Disassemble(w, 0))
	}
	p.AS.StoreWord(layout.TextBase+8, isa.PatchImm16(w, uint16(st.Addr>>16)))
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Stdout.String(), "/seg") {
		t.Fatalf("console output %q does not contain path", p.Stdout.String())
	}
}

func TestSyscallErrno(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 4
        la      $a0, path
        li      $a1, 0
        syscall
        halt
        .data
path:   .asciiz "/no/such/file"
`)
	p.Exec(im)
	k.Run(p, 100)
	if p.CPU.Regs[isa.RegV1] != Enoent {
		t.Fatalf("errno = %d, want ENOENT", p.CPU.Regs[isa.RegV1])
	}
}

func TestForkSemantics(t *testing.T) {
	// The E-fork experiment: private segments are copied, public segments
	// shared.
	k := New()
	parent := k.Spawn(0)
	// Private page.
	if err := parent.AS.MapAnon(layout.PrivDataBase, 4096, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	parent.AS.StoreWord(layout.PrivDataBase, 111)
	// Public segment: a mapped shared file.
	k.FS.Create("/pub", shmfs.DefaultFileMode, 0)
	st, err := k.MapSharedFile(parent, "/pub", 4096, addrspace.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	parent.AS.StoreWord(st.Addr, 222)

	child, err := k.Fork(parent)
	if err != nil {
		t.Fatal(err)
	}
	// Child sees both values initially.
	if v, _ := child.AS.LoadWord(layout.PrivDataBase); v != 111 {
		t.Fatalf("child private = %d", v)
	}
	if v, _ := child.AS.LoadWord(st.Addr); v != 222 {
		t.Fatalf("child public = %d", v)
	}
	// Child writes diverge in private, propagate in public.
	child.AS.StoreWord(layout.PrivDataBase, 333)
	child.AS.StoreWord(st.Addr, 444)
	if v, _ := parent.AS.LoadWord(layout.PrivDataBase); v != 111 {
		t.Fatalf("parent private clobbered: %d", v)
	}
	if v, _ := parent.AS.LoadWord(st.Addr); v != 444 {
		t.Fatalf("parent public = %d, want child's 444", v)
	}
	// And the write is visible through the file interface too.
	buf := make([]byte, 4)
	k.FS.ReadAt("/pub", 0, buf, 0)
	if got := uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3]); got != 444 {
		t.Fatalf("file sees %d", got)
	}
	if child.PPID != parent.PID {
		t.Fatalf("ppid = %d", child.PPID)
	}
	if child.PID == parent.PID {
		t.Fatal("pid not unique")
	}
}

func TestForkCopiesEnv(t *testing.T) {
	k := New()
	parent := k.Spawn(0)
	parent.Setenv("LD_LIBRARY_PATH", "/tmp/app.1")
	child, _ := k.Fork(parent)
	if child.Getenv("LD_LIBRARY_PATH") != "/tmp/app.1" {
		t.Fatal("env not inherited")
	}
	child.Setenv("LD_LIBRARY_PATH", "/other")
	if parent.Getenv("LD_LIBRARY_PATH") != "/tmp/app.1" {
		t.Fatal("child env write leaked to parent")
	}
}

func TestFaultHandlerChaining(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	var hemlockCalled, userCalled int
	p.Handler = func(pr *Process, f *addrspace.Fault) error {
		hemlockCalled++
		if f.Addr == 0x30000000 {
			// Resolve by mapping.
			return pr.AS.MapAnon(0x30000000, 4096, addrspace.ProtRW)
		}
		return ErrUnhandled
	}
	p.UserHandler = func(pr *Process, f *addrspace.Fault) error {
		userCalled++
		if f.Addr == 0x20000000 {
			return pr.AS.MapAnon(0x20000000, 4096, addrspace.ProtRW)
		}
		return ErrUnhandled
	}
	// Hemlock handler resolves the first.
	if err := p.StoreWord(0x30000000, 1); err != nil {
		t.Fatal(err)
	}
	if hemlockCalled != 1 || userCalled != 0 {
		t.Fatalf("calls: hemlock=%d user=%d", hemlockCalled, userCalled)
	}
	// Hemlock declines, user handler resolves.
	if err := p.StoreWord(0x20000000, 1); err != nil {
		t.Fatal(err)
	}
	if userCalled != 1 {
		t.Fatalf("user handler calls = %d", userCalled)
	}
	// Nobody handles: segfault surfaces.
	err := p.StoreWord(0x6FFFF000, 1)
	if !errors.Is(err, ErrUnhandled) {
		t.Fatalf("want ErrUnhandled, got %v", err)
	}
	if k.FaultCount != 3 {
		t.Fatalf("fault count = %d", k.FaultCount)
	}
}

func TestMapSharedFileAliasing(t *testing.T) {
	k := New()
	k.FS.Create("/shared.seg", shmfs.DefaultFileMode, 0)
	k.FS.WriteAt("/shared.seg", 0, []byte{0, 0, 0, 9}, 0)
	p1 := k.Spawn(0)
	p2 := k.Spawn(0)
	st1, err := k.MapSharedFile(p1, "/shared.seg", 4096, addrspace.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := k.MapSharedFile(p2, "/shared.seg", 4096, addrspace.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	// Same virtual address in both processes (the global mapping).
	if st1.Addr != st2.Addr {
		t.Fatalf("addresses differ: 0x%x vs 0x%x", st1.Addr, st2.Addr)
	}
	if v, _ := p1.AS.LoadWord(st1.Addr); v != 9 {
		t.Fatalf("initial contents = %d", v)
	}
	p1.AS.StoreWord(st1.Addr, 77)
	if v, _ := p2.AS.LoadWord(st2.Addr); v != 77 {
		t.Fatalf("p2 sees %d", v)
	}
	// Idempotent remap.
	if _, err := k.MapSharedFile(p1, "/shared.seg", 4096, addrspace.ProtRW); err != nil {
		t.Fatalf("remap: %v", err)
	}
}

func TestMapSharedFilePermissions(t *testing.T) {
	k := New()
	k.FS.Create("/private.seg", shmfs.ModeOwnerRead|shmfs.ModeOwnerWrite, 100)
	intruder := k.Spawn(200)
	if _, err := k.MapSharedFile(intruder, "/private.seg", 4096, addrspace.ProtRW); !errors.Is(err, shmfs.ErrPerm) {
		t.Fatalf("want ErrPerm, got %v", err)
	}
	owner := k.Spawn(100)
	if _, err := k.MapSharedFile(owner, "/private.seg", 4096, addrspace.ProtRW); err != nil {
		t.Fatalf("owner map failed: %v", err)
	}
}

func TestSbrk(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	p.brk = layout.PrivDataBase
	old, err := p.Sbrk(10000)
	if err != nil || old != layout.PrivDataBase {
		t.Fatalf("sbrk: %x %v", old, err)
	}
	if err := p.AS.StoreWord(layout.PrivDataBase+8192, 5); err != nil {
		t.Fatalf("heap not mapped: %v", err)
	}
}

func TestAllocPrivateDistinct(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	a, err := p.AllocPrivate(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.AllocPrivate(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b || b <= a {
		t.Fatalf("allocations overlap: 0x%x 0x%x", a, b)
	}
	if !layout.Private(a) {
		t.Fatalf("private allocation at public address 0x%x", a)
	}
}

func TestExitReleasesProcess(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	pid := p.PID
	p.Exit(3)
	if _, ok := k.Process(pid); ok {
		t.Fatal("exited process still in table")
	}
	if err := p.Exec(&objfile.Image{}); !errors.Is(err, ErrExited) {
		t.Fatalf("exec after exit: %v", err)
	}
	// Double exit is a no-op.
	p.Exit(4)
	if p.ExitCode != 3 {
		t.Fatalf("exit code changed to %d", p.ExitCode)
	}
}

func TestRunFaultRestartInVM(t *testing.T) {
	// A VM program stores through an unmapped shared address; the
	// process's handler maps the page; the kernel restarts the store.
	k := New()
	p := k.Spawn(0)
	mapped := false
	p.Handler = func(pr *Process, f *addrspace.Fault) error {
		if layout.Public(f.Addr) && !mapped {
			mapped = true
			return pr.AS.MapAnon(addrspace.PageBase(f.Addr), 4096, addrspace.ProtRW)
		}
		return ErrUnhandled
	}
	im := buildImage(t, `
        .text
        li      $t0, 0x30000000
        li      $t1, 55
        sw      $t1, 0($t0)
        lw      $t2, 0($t0)
        halt
`)
	p.Exec(im)
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if !mapped {
		t.Fatal("handler never ran")
	}
}

func TestCStringTermination(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	p.AS.MapAnon(0x1000, 4096, addrspace.ProtRW)
	p.AS.Write(0x1000, []byte("abc\x00def"))
	s, err := p.CString(0x1000)
	if err != nil || s != "abc" {
		t.Fatalf("CString = %q, %v", s, err)
	}
}

func TestProcessesList(t *testing.T) {
	k := New()
	a := k.Spawn(0)
	b := k.Spawn(0)
	if got := k.Processes(); len(got) != 2 || got[0].PID != a.PID || got[1].PID != b.PID {
		t.Fatalf("processes: %v", got)
	}
	a.Exit(0)
	if got := k.Processes(); len(got) != 1 || got[0].PID != b.PID {
		t.Fatalf("after exit: %v", got)
	}
}
