package kern

import (
	"testing"

	"hemlock/internal/isa"
	"hemlock/internal/obsv"
)

// TestSyscallPathNoAllocsWhenDisabled is the hot-path guarantee: with no
// trace sinks attached, dispatching a syscall allocates nothing — tracing
// costs one atomic load, counters are bare atomics.
func TestSyscallPathNoAllocsWhenDisabled(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        halt
`)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	if k.Obs.T.Enabled() {
		t.Fatal("tracer enabled by default")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p.CPU.Regs[isa.RegV0] = SysGetPID
		if err := k.Syscall(p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("syscall path allocates %.1f objects/op with tracing disabled, want 0", allocs)
	}
}

// TestKernelCountersTrackActivity runs a small program and checks the
// registry against ground truth the kernel also exposes directly.
func TestKernelCountersTrackActivity(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 3          # getpid
        syscall
        li      $v0, 3
        syscall
        li      $v0, 1          # exit
        li      $a0, 0
        syscall
`)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	steps, err := k.Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	s := k.Obs.R.Snapshot()
	if got := s.Counters["kern.syscalls"]; got != 3 {
		t.Fatalf("kern.syscalls = %d, want 3", got)
	}
	if got := s.Counters["kern.steps"]; got != steps {
		t.Fatalf("kern.steps = %d, want %d", got, steps)
	}
	if got := s.Counters["kern.exits"]; got != 1 {
		t.Fatalf("kern.exits = %d, want 1", got)
	}
	if got := s.Counters["vm.traps"]; got != p.CPU.Traps {
		t.Fatalf("vm.traps = %d, want CPU's count %d", got, p.CPU.Traps)
	}
	h, ok := s.Histograms["kern.run_steps"]
	if !ok || h.Count != 1 || h.Sum != steps {
		t.Fatalf("kern.run_steps histogram = %+v, want count=1 sum=%d", h, steps)
	}
}

// TestMemGaugesMatchPoolStats asserts the registry's mem gauges and the
// pool's own Stats() can never disagree: the gauges are callbacks sampled
// from the pool at snapshot time.
func TestMemGaugesMatchPoolStats(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 8          # sbrk
        li      $a0, 65536
        syscall
        halt
`)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	check := func() {
		st := k.Phys.Stats()
		s := k.Obs.R.Snapshot()
		if s.Gauges["mem.frames_live"] != int64(st.Live) {
			t.Fatalf("mem.frames_live = %d, pool says %d", s.Gauges["mem.frames_live"], st.Live)
		}
		if s.Gauges["mem.frame_allocs"] != int64(st.Allocs) {
			t.Fatalf("mem.frame_allocs = %d, pool says %d", s.Gauges["mem.frame_allocs"], st.Allocs)
		}
		if s.Gauges["mem.frame_frees"] != int64(st.Frees) {
			t.Fatalf("mem.frame_frees = %d, pool says %d", s.Gauges["mem.frame_frees"], st.Frees)
		}
		if s.Gauges["mem.frames_limit"] != int64(st.Limit) {
			t.Fatalf("mem.frames_limit = %d, pool says %d", s.Gauges["mem.frames_limit"], st.Limit)
		}
	}
	check()
	p.Exit(0) // release everything and check the gauges follow
	check()
}

// TestTraceCoversSubsystems runs a faulting-free program with a ring sink
// attached and checks events arrive from more than one subsystem.
func TestTraceCoversSubsystems(t *testing.T) {
	k := New()
	ring := obsv.NewRing(256)
	k.Obs.T.Attach(ring)
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 3
        syscall
        halt
`)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	subsys := map[string]bool{}
	names := map[string]bool{}
	for _, e := range ring.Events() {
		subsys[e.Subsys] = true
		names[e.Name] = true
	}
	for _, want := range []string{"kern", "addrspace"} {
		if !subsys[want] {
			t.Fatalf("no %s events in trace; got subsystems %v", want, subsys)
		}
	}
	for _, want := range []string{"spawn", "getpid", "run", "map_anon", "exit"} {
		if !names[want] {
			t.Fatalf("no %q event in trace; got %v", want, names)
		}
	}
}
