package kern

import (
	"fmt"

	"hemlock/internal/addrspace"
	"hemlock/internal/mem"
)

// Atomic operations on simulated memory. The paper points out that shared
// memory obliges processes to synchronise explicitly, citing user-space
// spin locks; real hardware provides an atomic primitive (test-and-set on
// the Sequent, LL/SC on later MIPS). The simulation provides the
// equivalent here: word-sized atomics executed as host atomics directly on
// the backing frame word, with full fault handling, so user-space locks
// can be built in shared segments.
//
// These used to run under a kernel-wide mutex, which serialized every
// atomic in the fleet. With true SMP the mutex is gone: each operation is
// one host atomic on the frame word (mem.Frame.SwapWordBE and friends), so
// N guest CPUs spinning on N different locks never contend in the kernel,
// and the host atomic supplies exactly the acquire/release ordering — the
// happens-before edge — that makes data guarded by a guest spin lock safe
// to access from the concurrent goroutines driving guest CPUs under the
// Go memory model. See docs/SMP.md for the full guest→host ordering map.

// atomicFrame translates addr for the given access with fault handling and
// returns the backing frame. Atomics require word alignment: real
// test-and-set does, and the atomicity guarantee only holds within one
// frame word.
func (p *Process) atomicFrame(addr uint32, access addrspace.Access) (*mem.Frame, error) {
	if addr&3 != 0 {
		return nil, fmt.Errorf("kern: unaligned atomic at 0x%08x", addr)
	}
	var f *mem.Frame
	err := p.retrying(func() error {
		e, flt := p.AS.Translate(addr, access)
		if flt != nil {
			return flt
		}
		f = e.Frame
		return nil
	})
	return f, err
}

// TestAndSet atomically reads the word at addr and sets it to 1, returning
// the previous value.
func (p *Process) TestAndSet(addr uint32) (uint32, error) {
	f, err := p.atomicFrame(addr, addrspace.AccessWrite)
	if err != nil {
		return 0, err
	}
	return f.SwapWordBE(addr&(mem.PageSize-1), 1), nil
}

// AtomicStore stores val at addr with release ordering (used to drop locks
// built on TestAndSet).
func (p *Process) AtomicStore(addr, val uint32) error {
	f, err := p.atomicFrame(addr, addrspace.AccessWrite)
	if err != nil {
		return err
	}
	f.StoreWordBE(addr&(mem.PageSize-1), val)
	return nil
}

// AtomicLoad loads the word at addr with acquire ordering.
func (p *Process) AtomicLoad(addr uint32) (uint32, error) {
	f, err := p.atomicFrame(addr, addrspace.AccessRead)
	if err != nil {
		return 0, err
	}
	return f.LoadWordBE(addr & (mem.PageSize - 1)), nil
}

// AtomicAdd atomically adds delta to the word at addr and returns the new
// value.
func (p *Process) AtomicAdd(addr, delta uint32) (uint32, error) {
	f, err := p.atomicFrame(addr, addrspace.AccessWrite)
	if err != nil {
		return 0, err
	}
	return f.AddWordBE(addr&(mem.PageSize-1), delta), nil
}

// CompareAndSwap atomically replaces old with new at addr, reporting
// whether the swap happened.
func (p *Process) CompareAndSwap(addr, old, new uint32) (bool, error) {
	f, err := p.atomicFrame(addr, addrspace.AccessWrite)
	if err != nil {
		return false, err
	}
	return f.CompareAndSwapWordBE(addr&(mem.PageSize-1), old, new), nil
}
