package kern

import "sync"

// Atomic operations on simulated memory. The paper points out that shared
// memory obliges processes to synchronise explicitly, citing user-space
// spin locks; real hardware provides an atomic primitive (test-and-set on
// the Sequent, LL/SC on later MIPS). The simulation provides the
// equivalent here: word-sized atomics executed under a kernel-wide lock,
// with full fault handling, so user-space locks can be built in shared
// segments. The atomicMu critical sections also give the host language the
// happens-before edges that make data guarded by such locks safe to access
// from concurrent goroutines driving different processes.

var atomicMu sync.Mutex

// TestAndSet atomically reads the word at addr and sets it to 1, returning
// the previous value.
func (p *Process) TestAndSet(addr uint32) (uint32, error) {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	old, err := p.LoadWord(addr)
	if err != nil {
		return 0, err
	}
	if err := p.StoreWord(addr, 1); err != nil {
		return 0, err
	}
	return old, nil
}

// AtomicStore stores val at addr with the same ordering as TestAndSet
// (used to release locks built on it).
func (p *Process) AtomicStore(addr, val uint32) error {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	return p.StoreWord(addr, val)
}

// AtomicLoad loads the word at addr with acquire ordering.
func (p *Process) AtomicLoad(addr uint32) (uint32, error) {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	return p.LoadWord(addr)
}

// AtomicAdd atomically adds delta to the word at addr and returns the new
// value.
func (p *Process) AtomicAdd(addr, delta uint32) (uint32, error) {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	v, err := p.LoadWord(addr)
	if err != nil {
		return 0, err
	}
	v += delta
	if err := p.StoreWord(addr, v); err != nil {
		return 0, err
	}
	return v, nil
}

// CompareAndSwap atomically replaces old with new at addr, reporting
// whether the swap happened.
func (p *Process) CompareAndSwap(addr, old, new uint32) (bool, error) {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	v, err := p.LoadWord(addr)
	if err != nil {
		return false, err
	}
	if v != old {
		return false, nil
	}
	return true, p.StoreWord(addr, new)
}
