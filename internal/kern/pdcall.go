package kern

// Protection-domain switching: the synchronous-communication extension the
// paper announces in section 6 ("We plan to add a protection-domain
// switching system call to our modified IRIX kernel to support synchronous
// communication across protection boundaries in Hemlock"). The intended
// use is fast RPC: bulk arguments live in shared segments — the same
// segment, at the same address, in caller and callee — so a call passes
// only a register argument (typically a pointer into a shared segment) and
// crosses into the server's protection domain without marshalling or
// copying.
//
// A server process registers an entry point (a VM address, or a hosted Go
// handler standing in for one). A client's pd_call traps into the kernel,
// which switches to the server's domain, runs the entry with the argument
// in $a0, and returns the server's $v0 to the client when the entry
// executes pd_return.

import (
	"errors"
	"fmt"

	"hemlock/internal/isa"
	"hemlock/internal/vm"
)

// PD system call numbers (continuing the table in syscall.go).
const (
	SysPDServe  = 20 // pd_serve(entry) -> service id
	SysPDCall   = 21 // pd_call(id, arg) -> result
	SysPDReturn = 22 // pd_return(result)   [valid only inside a service entry]
)

// Errors.
var (
	ErrNoService   = errors.New("kern: no such protection-domain service")
	ErrPDReentered = errors.New("kern: protection-domain service re-entered")
	ErrNotInPDCall = errors.New("kern: pd_return outside a service call")
)

// PDHandler is a hosted service body: the Go-level stand-in for a VM entry
// point, used by examples and the svc package. It runs in the server's
// protection domain (its address space, through p).
type PDHandler func(server *Process, arg uint32) (uint32, error)

// pdService is one registered service.
type pdService struct {
	id     int
	server *Process
	entry  uint32    // VM entry point (when handler is nil)
	hosted PDHandler // hosted handler (when non-nil)
	busy   bool
}

// RegisterPDService registers a hosted service and returns its id.
func (k *Kernel) RegisterPDService(server *Process, h PDHandler) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	id := len(k.pdServices) + 1
	k.pdServices = append(k.pdServices, &pdService{id: id, server: server, hosted: h})
	return id
}

// registerPDEntry registers a VM entry point service (the pd_serve path).
func (k *Kernel) registerPDEntry(server *Process, entry uint32) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	id := len(k.pdServices) + 1
	k.pdServices = append(k.pdServices, &pdService{id: id, server: server, entry: entry})
	return id
}

func (k *Kernel) pdService(id int) (*pdService, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if id < 1 || id > len(k.pdServices) {
		return nil, fmt.Errorf("%w: id %d", ErrNoService, id)
	}
	return k.pdServices[id-1], nil
}

// pdCallBudget bounds a service invocation.
const pdCallBudget = 1_000_000

// PDCall performs a synchronous call into the service from client. The
// client's identity travels with the call (services may check it); the
// argument is a single register, with bulk data expected to live in shared
// segments.
func (k *Kernel) PDCall(client *Process, id int, arg uint32) (uint32, error) {
	svc, err := k.pdService(id)
	if err != nil {
		return 0, err
	}
	if svc.server.Exited {
		return 0, fmt.Errorf("%w: server pid %d exited", ErrNoService, svc.server.PID)
	}
	if svc.busy {
		return 0, fmt.Errorf("%w: service %d", ErrPDReentered, id)
	}
	svc.busy = true
	defer func() { svc.busy = false }()

	if svc.hosted != nil {
		return svc.hosted(svc.server, arg)
	}

	// Switch into the server's domain: save its CPU state, run the entry
	// with the argument, and restore afterwards.
	server := svc.server
	saved := server.CPU.Snapshot()
	defer func() {
		server.CPU.FlushObsv() // credit cache stats before the state rollback discards them
		*server.CPU = saved
	}()
	server.CPU.PC = svc.entry
	server.CPU.Regs[isa.RegA0] = arg
	server.CPU.Regs[isa.RegA1] = uint32(client.PID)

	// Batched execution: the server body runs through RunBatch (and so
	// through the block engine), with the budget carried as a Steps delta
	// across turns. A turn that faults retires nothing — the trap unwinds
	// the faulting instruction so the lazy-link handler can patch and
	// restart it — so the turn counter, not the step budget, bounds a
	// handler that never makes progress. The deferred rollback above
	// copies the snapshot back over the CPU, which also discards any
	// translated blocks the service call built.
	start := server.CPU.Steps
	for turns := uint64(0); turns < pdCallBudget; turns++ {
		used := server.CPU.Steps - start
		if used >= pdCallBudget {
			break
		}
		ev, err := server.CPU.RunBatch(pdCallBudget - used)
		if err != nil {
			f, ok := vm.FaultOf(err)
			if !ok {
				return 0, fmt.Errorf("kern: pd service %d: %w", id, err)
			}
			if herr := k.HandleFault(server, f); herr != nil {
				return 0, fmt.Errorf("kern: pd service %d: %w", id, herr)
			}
			continue
		}
		switch ev {
		case vm.EventSyscall:
			num := server.CPU.Regs[isa.RegV0]
			if num == SysPDReturn {
				return server.CPU.Regs[isa.RegA0], nil
			}
			if err := k.Syscall(server); err != nil {
				return 0, err
			}
			if server.Exited {
				return 0, fmt.Errorf("kern: pd service %d exited mid-call", id)
			}
		case vm.EventBreak:
			if server.BreakHandler != nil {
				if err := server.BreakHandler(server); err != nil {
					return 0, err
				}
				continue
			}
			return 0, fmt.Errorf("kern: pd service %d hit break at 0x%08x", id, server.CPU.PC)
		case vm.EventHalt:
			return 0, fmt.Errorf("kern: pd service %d halted mid-call", id)
		}
	}
	return 0, fmt.Errorf("kern: pd service %d exceeded %d steps", id, pdCallBudget)
}
