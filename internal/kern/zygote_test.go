package kern

import (
	"testing"
)

// zygoteTestImage increments a counter in bss, writes to the stack, and
// exits with the counter value — enough to prove clones are isolated.
const zygoteTestSrc = `
.text
	li $t0, 41
	addiu $t0, $t0, 1
	li $v0, 1
	move $a0, $t0
	syscall
`

func TestZygoteCloneMatchesColdLaunch(t *testing.T) {
	k := New()
	im := buildImage(t, zygoteTestSrc)

	// Cold launch, parked at entry (not yet run): register as template.
	cold := k.Spawn(7)
	if err := cold.Exec(im); err != nil {
		t.Fatal(err)
	}
	cold.Setenv("HOME", "/")
	k.RegisterZygote("key1", cold)
	if !k.HasZygote("key1") {
		t.Fatal("template not registered")
	}

	// The cold process still runs to completion.
	if _, err := k.Run(cold, 1000); err != nil {
		t.Fatal(err)
	}
	if !cold.Exited || cold.ExitCode != 42 {
		t.Fatalf("cold: exited=%v code=%d", cold.Exited, cold.ExitCode)
	}

	// Clones run the same program from the same snapshot, independently.
	for i := 0; i < 3; i++ {
		c, ok := k.CloneZygote("key1")
		if !ok {
			t.Fatal("clone failed")
		}
		if c.UID != 7 || c.Getenv("HOME") != "/" {
			t.Fatalf("clone identity: uid=%d env=%q", c.UID, c.Getenv("HOME"))
		}
		if _, err := k.Run(c, 1000); err != nil {
			t.Fatal(err)
		}
		if !c.Exited || c.ExitCode != 42 {
			t.Fatalf("clone %d: exited=%v code=%d", i, c.Exited, c.ExitCode)
		}
	}
	zs := k.Zygotes()
	if len(zs) != 1 || zs[0].Clones != 3 {
		t.Fatalf("registry stats: %+v", zs)
	}
}

func TestZygotePIDSequenceMatchesColdWorld(t *testing.T) {
	// Templates must not consume PIDs from the normal sequence: a world
	// that registers zygotes hands out exactly the same PIDs as one that
	// launches everything cold (guests can call getpid).
	k := New()
	im := buildImage(t, zygoteTestSrc)
	p1 := k.Spawn(0)
	if err := p1.Exec(im); err != nil {
		t.Fatal(err)
	}
	k.RegisterZygote("k", p1)
	p2, ok := k.CloneZygote("k")
	if !ok {
		t.Fatal("clone failed")
	}
	if p2.PID != p1.PID+1 {
		t.Fatalf("clone PID = %d, want %d (template must not burn a PID)", p2.PID, p1.PID+1)
	}
	if p2.PPID != 0 {
		t.Fatalf("clone PPID = %d, want 0", p2.PPID)
	}
	// The hidden template is not in the process table.
	for _, p := range k.Processes() {
		if p.PID >= zygotePIDBase {
			t.Fatalf("template PID %d leaked into the process table", p.PID)
		}
	}
}

func TestZygoteDropReleasesFrames(t *testing.T) {
	k := New()
	im := buildImage(t, zygoteTestSrc)
	base := k.Phys.Stats().Live
	p := k.Spawn(0)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	k.RegisterZygote("k", p)
	if _, err := k.Run(p, 1000); err != nil { // cold proc exits, releases its AS
		t.Fatal(err)
	}
	if !k.HasZygote("k") {
		t.Fatal("missing template")
	}
	k.DropZygote("k")
	if k.HasZygote("k") {
		t.Fatal("template survived drop")
	}
	if live := k.Phys.Stats().Live; live != base {
		t.Fatalf("live frames = %d after drop, want %d", live, base)
	}
	// Idempotent.
	k.DropZygote("k")
	k.DropAllZygotes()
}

func TestZygoteCapacityEviction(t *testing.T) {
	k := New()
	im := buildImage(t, zygoteTestSrc)
	p := k.Spawn(0)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxZygotes+5; i++ {
		k.RegisterZygote(string(rune('a'+i%26))+string(rune('0'+i/26)), p)
	}
	if n := len(k.Zygotes()); n != MaxZygotes {
		t.Fatalf("registry size = %d, want %d", n, MaxZygotes)
	}
	// Oldest evicted.
	if k.HasZygote("a0") {
		t.Fatal("oldest template should have been evicted")
	}
}

func TestZygoteCloneStackIsolation(t *testing.T) {
	// A clone's stack writes must not leak into the template (or siblings):
	// the CoW pages resolve privately.
	k := New()
	im := buildImage(t, zygoteTestSrc)
	p := k.Spawn(0)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	k.RegisterZygote("k", p)
	c1, _ := k.CloneZygote("k")
	c2, _ := k.CloneZygote("k")
	sp := c1.CPU.Regs[29] - 64
	if err := c1.AS.StoreWord(sp, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if w, err := c2.AS.LoadWord(sp); err != nil || w != 0 {
		t.Fatalf("sibling saw %08x (err %v), want 0", w, err)
	}
	if w, err := p.AS.LoadWord(sp); err != nil || w != 0 {
		t.Fatalf("cold parent saw %08x (err %v), want 0", w, err)
	}
}
