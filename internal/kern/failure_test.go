package kern

import (
	"errors"
	"strings"
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/layout"
	"hemlock/internal/mem"
	"hemlock/internal/shmfs"
)

// newTinyKernel boots a kernel whose physical memory is capped, for
// out-of-memory injection.
func newTinyKernel(t *testing.T, frames int) *Kernel {
	t.Helper()
	phys := mem.NewPhysical(frames)
	fs, err := shmfs.New(phys)
	if err != nil {
		t.Fatal(err)
	}
	return NewWithFS(fs, phys)
}

func TestExecFailsCleanlyWhenOutOfMemory(t *testing.T) {
	k := newTinyKernel(t, 2) // far too small for image + eager stack
	p := k.Spawn(0)
	im := buildImage(t, ".text\n halt\n")
	err := p.Exec(im)
	if err == nil || !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("exec under memory pressure: %v", err)
	}
	// The failed exec must not leak live frames beyond what it mapped
	// before failing; exiting reclaims everything.
	p.Exit(1)
	if st := k.Phys.Stats(); st.Live != 0 {
		t.Fatalf("leaked %d frames after failed exec + exit", st.Live)
	}
}

func TestSharedFileGrowthFailsUnderMemoryPressure(t *testing.T) {
	k := newTinyKernel(t, 4)
	k.FS.Create("/seg", shmfs.DefaultFileMode, 0)
	p := k.Spawn(0)
	_, err := k.MapSharedFile(p, "/seg", 64*mem.PageSize, addrspace.ProtRW)
	if !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("map under memory pressure: %v", err)
	}
}

func TestFaultRetryLimit(t *testing.T) {
	// A handler that claims success without resolving anything must not
	// hang the kernel.
	k := New()
	p := k.Spawn(0)
	calls := 0
	p.Handler = func(pr *Process, f *addrspace.Fault) error {
		calls++
		return nil // "handled", but nothing changed
	}
	err := p.StoreWord(0x30000000, 1)
	if err == nil || !strings.Contains(err.Error(), "retry limit") {
		t.Fatalf("no-progress handler: %v", err)
	}
	if calls != maxFaultRetries {
		t.Fatalf("handler called %d times, want %d", calls, maxFaultRetries)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	boom := errors.New("handler exploded")
	p.Handler = func(pr *Process, f *addrspace.Fault) error { return boom }
	if err := p.StoreWord(0x30000000, 1); !errors.Is(err, boom) {
		t.Fatalf("handler error lost: %v", err)
	}
}

func TestExitReclaimsEverything(t *testing.T) {
	// Soak: spawn/exec/run/exit repeatedly; live frames must return to
	// exactly the file-backed frames.
	k := New()
	k.FS.Create("/pub", shmfs.DefaultFileMode, 0)
	k.FS.Truncate("/pub", 3*mem.PageSize, 0)
	fileFrames := k.Phys.Stats().Live
	im := buildImage(t, ".text\n li $t0, 1\n halt\n")
	for i := 0; i < 10; i++ {
		p := k.Spawn(0)
		if err := p.Exec(im); err != nil {
			t.Fatal(err)
		}
		if _, err := k.MapSharedFile(p, "/pub", 0, addrspace.ProtRW); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Run(p, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if st := k.Phys.Stats(); st.Live != fileFrames {
		t.Fatalf("live frames = %d after all exits, want %d (shared file only)", st.Live, fileFrames)
	}
}

func TestForkUnderMemoryPressure(t *testing.T) {
	// Fork is copy-on-write: it shares the parent's frames, so it cannot
	// fail for lack of memory up front. Pressure surfaces at store time
	// instead — once the pool drains, resolving a page's private copy
	// fails and the store faults.
	k := newTinyKernel(t, 70)
	parent := k.Spawn(0)
	im := buildImage(t, ".text\n halt\n")
	if err := parent.Exec(im); err != nil {
		t.Fatalf("parent exec: %v", err)
	}
	// A sizeable private heap region: fork shares it CoW, and the child's
	// stores below each need a fresh frame for the private copy.
	const heapPages = 40
	heapBase := layout.PrivDataBase + 0x100000
	if err := parent.AS.MapAnon(heapBase, heapPages*mem.PageSize, addrspace.ProtRW); err != nil {
		t.Fatalf("map heap: %v", err)
	}
	child, err := k.Fork(parent)
	if err != nil {
		t.Fatalf("CoW fork under pressure: %v", err)
	}
	faulted := false
	for addr := heapBase; addr < heapBase+heapPages*mem.PageSize; addr += mem.PageSize {
		if err := child.AS.StoreWord(addr, 1); err != nil {
			f, ok := addrspace.IsFault(err)
			if !ok || f.Unmapped || f.Access != addrspace.AccessWrite {
				t.Fatalf("unexpected store error: %v", err)
			}
			faulted = true
			break
		}
	}
	if !faulted {
		t.Fatal("expected a store to fault once the frame pool drained")
	}
}

func TestSbrkLimit(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	p.brk = layout.PrivDataLimit - mem.PageSize
	if _, err := p.Sbrk(10 * mem.PageSize); err == nil {
		t.Fatal("sbrk past region limit succeeded")
	}
}

func TestPrivateRegionExhaustion(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	// Burn through the private module region with one huge allocation.
	if _, err := p.AllocPrivate(layout.PrivDataLimit); err == nil {
		t.Fatal("oversized private allocation succeeded")
	}
}
