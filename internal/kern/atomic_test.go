package kern

import (
	"sync"
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/shmfs"
)

func atomicProc(t *testing.T) (*Kernel, *Process, uint32) {
	t.Helper()
	k := New()
	k.FS.Create("/atom", shmfs.DefaultFileMode, 0)
	p := k.Spawn(0)
	st, err := k.MapSharedFile(p, "/atom", 4096, addrspace.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	return k, p, st.Addr
}

func TestTestAndSet(t *testing.T) {
	_, p, addr := atomicProc(t)
	old, err := p.TestAndSet(addr)
	if err != nil || old != 0 {
		t.Fatalf("first TAS: %d, %v", old, err)
	}
	old, _ = p.TestAndSet(addr)
	if old != 1 {
		t.Fatalf("second TAS: %d", old)
	}
	if err := p.AtomicStore(addr, 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.AtomicLoad(addr); v != 0 {
		t.Fatalf("after release: %d", v)
	}
}

func TestAtomicAddAndCAS(t *testing.T) {
	_, p, addr := atomicProc(t)
	for i := 1; i <= 5; i++ {
		v, err := p.AtomicAdd(addr, 2)
		if err != nil || v != uint32(2*i) {
			t.Fatalf("add %d: %d, %v", i, v, err)
		}
	}
	ok, err := p.CompareAndSwap(addr, 10, 99)
	if err != nil || !ok {
		t.Fatalf("cas: %v %v", ok, err)
	}
	ok, _ = p.CompareAndSwap(addr, 10, 50)
	if ok {
		t.Fatal("stale cas succeeded")
	}
	if v, _ := p.AtomicLoad(addr); v != 99 {
		t.Fatalf("value = %d", v)
	}
}

func TestAtomicAddConcurrent(t *testing.T) {
	k, _, addr := atomicProc(t)
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := k.Spawn(0)
			// Each worker maps the same shared word.
			if _, err := k.MapSharedFile(p, "/atom", 4096, addrspace.ProtRW); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < each; i++ {
				if _, err := p.AtomicAdd(addr, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	reader := k.Spawn(0)
	k.MapSharedFile(reader, "/atom", 4096, addrspace.ProtRW)
	v, _ := reader.AtomicLoad(addr)
	if v != workers*each {
		t.Fatalf("counter = %d, want %d (lost updates)", v, workers*each)
	}
}

func TestAtomicFaultsPropagate(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	// Unmapped, unhandleable address: the fault surfaces as an error.
	if _, err := p.TestAndSet(0x6F000000); err == nil {
		t.Fatal("TAS on hole succeeded")
	}
	if _, err := p.AtomicAdd(0x6F000000, 1); err == nil {
		t.Fatal("AtomicAdd on hole succeeded")
	}
}

func TestStoreByteAndHostFiles(t *testing.T) {
	k := New()
	k.FS.Create("/hf", shmfs.DefaultFileMode, 0)
	p := k.Spawn(0)
	if err := p.AS.MapAnon(0x20000000, 4096, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(0x20000003, 0xAB); err != nil {
		t.Fatal(err)
	}
	if b, _ := p.LoadByte(0x20000003); b != 0xAB {
		t.Fatalf("byte = %x", b)
	}
	fd, err := p.OpenHostFile("/hf", true)
	if err != nil || fd < 3 {
		t.Fatalf("OpenHostFile: %d, %v", fd, err)
	}
	if len(p.Regions()) == 0 {
		t.Fatal("no regions reported")
	}
}
