package kern

import (
	"strings"
	"testing"

	"hemlock/internal/isa"
	"hemlock/internal/layout"
	"hemlock/internal/shmfs"
)

// TestRecursiveFibonacci runs a real recursive program: exercises the
// calling convention, stack discipline, branches and arithmetic together.
func TestRecursiveFibonacci(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        # int fib(n): n in $a0, result in $v0
        .globl  main
main:
        li      $a0, 10
        addiu   $sp, $sp, -8
        sw      $ra, 0($sp)
        jal     fib
        lw      $ra, 0($sp)
        addiu   $sp, $sp, 8
        move    $a0, $v0        # exit(fib(10))
        li      $v0, 1
        syscall

fib:
        li      $t0, 2
        slt     $t1, $a0, $t0   # n < 2 ?
        beqz    $t1, rec
        move    $v0, $a0
        jr      $ra
rec:
        addiu   $sp, $sp, -12
        sw      $ra, 0($sp)
        sw      $a0, 4($sp)
        addiu   $a0, $a0, -1
        jal     fib             # fib(n-1)
        sw      $v0, 8($sp)
        lw      $a0, 4($sp)
        addiu   $a0, $a0, -2
        jal     fib             # fib(n-2)
        lw      $t2, 8($sp)
        addu    $v0, $v0, $t2
        lw      $ra, 0($sp)
        addiu   $sp, $sp, 12
        jr      $ra
`)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	steps, err := k.Run(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != 55 {
		t.Fatalf("fib(10) = %d, want 55", p.ExitCode)
	}
	if steps < 1000 {
		t.Fatalf("only %d steps for a recursive fib(10)?", steps)
	}
}

// TestMapSharedSyscall: the mmap-style path — a VM program maps a shared
// file by name and reads through the mapping.
func TestMapSharedSyscall(t *testing.T) {
	k := New()
	k.FS.Create("/boxx", shmfs.DefaultFileMode, 0)
	k.FS.WriteAt("/boxx", 0, []byte{0, 0, 0, 77}, 0)
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 14         # map_shared(path, size)
        la      $a0, path
        li      $a1, 4096
        syscall
        bnez    $v1, fail
        lw      $a0, 0($v0)     # read through the mapping
        li      $v0, 1
        syscall
fail:   li      $a0, 255
        li      $v0, 1
        syscall
        .data
path:   .asciiz "/boxx"
`)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(p, 10000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != 77 {
		t.Fatalf("exit = %d, want 77", p.ExitCode)
	}
}

// TestMapSharedSyscallMissingFile returns ENOENT.
func TestMapSharedSyscallMissingFile(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 14
        la      $a0, path
        li      $a1, 4096
        syscall
        move    $a0, $v1        # exit(errno)
        li      $v0, 1
        syscall
        .data
path:   .asciiz "/nope"
`)
	p.Exec(im)
	if _, err := k.Run(p, 10000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != Enoent {
		t.Fatalf("errno = %d, want ENOENT", p.ExitCode)
	}
}

// TestConsoleInterleavedSyscalls: a loop of writes builds up ordered
// output.
func TestConsoleOrdering(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        .globl  main
        li      $s0, 3
loop:   li      $v0, 2
        li      $a0, 1
        la      $a1, tick
        li      $a2, 5
        syscall
        addiu   $s0, $s0, -1
        bgtz    $s0, loop
        halt
        .data
tick:   .ascii  "tick "
`)
	p.Exec(im)
	if _, err := k.Run(p, 10000); err != nil {
		t.Fatal(err)
	}
	if p.Stdout.String() != strings.Repeat("tick ", 3) {
		t.Fatalf("output = %q", p.Stdout.String())
	}
}

// TestForkSyscall: parent and child come out of the fork with identical
// PCs; the return value tells them apart; each runs to its own exit, and
// they share the public portion of the address space.
func TestForkSyscall(t *testing.T) {
	k := New()
	k.FS.Create("/mbox", shmfs.DefaultFileMode, 0)
	parent := k.Spawn(0)
	im := buildImage(t, `
        .text
        # map the mailbox first so both sides inherit the mapping
        li      $v0, 14
        la      $a0, path
        li      $a1, 4096
        syscall
        move    $s0, $v0        # mailbox base
        li      $v0, 17         # fork()
        syscall
        beqz    $v0, child
        # parent: exit(100 + child pid is unknowable; just exit 100)
        li      $a0, 100
        li      $v0, 1
        syscall
child:
        li      $t0, 31337      # child: write to the shared mailbox
        sw      $t0, 0($s0)
        li      $a0, 7
        li      $v0, 1
        syscall
        .data
path:   .asciiz "/mbox"
`)
	if err := parent.Exec(im); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(parent, 100000); err != nil {
		t.Fatal(err)
	}
	if parent.ExitCode != 100 {
		t.Fatalf("parent exit = %d", parent.ExitCode)
	}
	// The child exists and runs its branch.
	procs := k.Processes()
	if len(procs) != 1 {
		t.Fatalf("live processes = %d, want 1 (the child)", len(procs))
	}
	child := procs[0]
	if child.PPID != parent.PID {
		t.Fatalf("child ppid = %d", child.PPID)
	}
	if _, err := k.Run(child, 100000); err != nil {
		t.Fatal(err)
	}
	if child.ExitCode != 7 {
		t.Fatalf("child exit = %d", child.ExitCode)
	}
	// The child's mailbox store went into the shared file.
	buf := make([]byte, 4)
	k.FS.ReadAt("/mbox", 0, buf, 0)
	got := uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])
	if got != 31337 {
		t.Fatalf("mailbox = %d", got)
	}
}

// TestOpenByAddrSyscall: "we overload the arguments to open so that the
// programmer can open a file by address instead of by name, with a single
// system call."
func TestOpenByAddrSyscall(t *testing.T) {
	k := New()
	st, _ := k.FS.Create("/named", shmfs.DefaultFileMode, 0)
	k.FS.WriteAt("/named", 0, []byte("via address"), 0)
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 10         # open_by_addr(addr, readonly)
        lui     $a0, 0x3000     # patched below
        li      $a1, 0
        syscall
        bnez    $v1, fail
        move    $s0, $v0
        li      $v0, 6          # read(fd, buf, 11)
        move    $a0, $s0
        la      $a1, buf
        li      $a2, 11
        syscall
        li      $v0, 2          # write(1, buf, 11)
        li      $a0, 1
        la      $a1, buf
        li      $a2, 11
        syscall
        halt
fail:   halt
        .data
buf:    .space 16
`)
	p.Exec(im)
	// li is a two-instruction pseudo, so the lui $a0 is the 3rd word.
	w, _ := p.AS.LoadWord(layout.TextBase + 8)
	if isa.Decode(w).Op != isa.OpLUI {
		t.Fatalf("instruction at +8 is %s, not lui", isa.Disassemble(w, 0))
	}
	p.AS.StoreWord(layout.TextBase+8, isa.PatchImm16(w, uint16(st.Addr>>16)))
	if _, err := k.Run(p, 100000); err != nil {
		t.Fatal(err)
	}
	if p.Stdout.String() != "via address" {
		t.Fatalf("output = %q", p.Stdout.String())
	}
}
