// Package kern implements the simulated Unix kernel that hosts Hemlock: it
// owns physical memory and the shared file system, creates processes, forks
// them with copy-private/share-public semantics, delivers memory faults to
// the user-level SIGSEGV handler, and dispatches the system calls R3K-lite
// programs make — including the new calls that translate back and forth
// between addresses and path names in the shared file system.
package kern

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hemlock/internal/addrspace"
	"hemlock/internal/layout"
	"hemlock/internal/mem"
	"hemlock/internal/objfile"
	"hemlock/internal/obsv"
	"hemlock/internal/shmfs"
	"hemlock/internal/vm"
)

// Errors.
var (
	ErrUnhandled = errors.New("kern: fault not handled")
	ErrNoProcess = errors.New("kern: no such process")
	ErrBadFD     = errors.New("kern: bad file descriptor")
	ErrExited    = errors.New("kern: process has exited")
)

// FaultHandler is a user-level fault handler: the simulated SIGSEGV
// catcher. Returning nil means the fault was resolved and the instruction
// should be restarted; returning (or wrapping) ErrUnhandled passes the
// fault along (to the program's own handler, then to default disposition).
type FaultHandler func(p *Process, f *addrspace.Fault) error

// Kernel is the machine: physical memory, the shared file system, and the
// process table.
type Kernel struct {
	mu      sync.Mutex
	Phys    *mem.Physical
	FS      *shmfs.FS
	procs   map[int]*Process
	nextPID int

	// FaultCount counts faults delivered to user-level handlers (the
	// E-lazy and E-ptr experiments read it).
	FaultCount uint64

	// shmTxn backs the txn_stage/txn_commit system calls (see SetShmTxn);
	// nil on machines without a netshm endpoint.
	shmTxn ShmTxn

	// Obs is the machine-wide observability bundle every subsystem shares:
	// the tracer has no sinks (disabled) until something attaches one, the
	// registry is always live.
	Obs *obsv.Obs

	// Pre-fetched instrument handles so the hot paths are bare atomics.
	ctrSyscalls  *obsv.Counter
	ctrFaults    *obsv.Counter
	ctrSteps     *obsv.Counter
	ctrForks     *obsv.Counter
	ctrExits     *obsv.Counter
	ctrVMTraps   *obsv.Counter
	ctrTLBHit    *obsv.Counter
	ctrTLBMiss   *obsv.Counter
	ctrICFill    *obsv.Counter
	ctrICInval   *obsv.Counter
	ctrBlkBuild  *obsv.Counter
	ctrBlkHit    *obsv.Counter
	ctrBlkInval  *obsv.Counter
	ctrFusedOps  *obsv.Counter
	ctrASMaps    *obsv.Counter
	ctrStackGrow *obsv.Counter
	ctrASUnmaps  *obsv.Counter
	ctrZygReg    *obsv.Counter
	ctrZygClone  *obsv.Counter
	hRunSteps    *obsv.Histogram

	pdServices []*pdService

	// sched is the attached SMP scheduler, nil until a client (the serve
	// daemon, a test harness) brings one up. Kernel.Run keeps working
	// without one — a single-CPU world is just the machine with no
	// scheduler attached.
	sched atomic.Pointer[Scheduler]

	// Zygote registry: parked, fully linked template processes keyed by
	// launch content hash (see zygote.go). Templates live outside the
	// process table and the normal PID sequence.
	zmu      sync.Mutex
	zygotes  map[string]*zygote
	zorder   []string // registration order, for capacity eviction
	nextZPID int
}

// New boots a kernel with a fresh shared file system.
func New() *Kernel {
	phys := mem.NewPhysical(0)
	fs, err := shmfs.New(phys)
	if err != nil {
		panic(err) // cannot happen: New only fails on allocation
	}
	return newKernel(fs, phys)
}

// NewWithFS boots a kernel around an existing file system (a loaded disk
// image). phys must be the pool backing fs.
func NewWithFS(fs *shmfs.FS, phys *mem.Physical) *Kernel {
	return newKernel(fs, phys)
}

// newKernel wires the observability layer through every subsystem the
// kernel owns: registry-backed counters for the kernel itself, the frame
// pool's gauges, and the shared file system's tracer hookup.
func newKernel(fs *shmfs.FS, phys *mem.Physical) *Kernel {
	o := obsv.New()
	k := &Kernel{
		Phys: phys, FS: fs, procs: map[int]*Process{}, nextPID: 1,
		Obs:          o,
		ctrSyscalls:  o.R.Counter("kern.syscalls"),
		ctrFaults:    o.R.Counter("kern.faults"),
		ctrSteps:     o.R.Counter("kern.steps"),
		ctrForks:     o.R.Counter("kern.forks"),
		ctrExits:     o.R.Counter("kern.exits"),
		ctrStackGrow: o.R.Counter("kern.stack_grow"),
		ctrVMTraps:   o.R.Counter("vm.traps"),
		ctrTLBHit:    o.R.Counter("vm.tlb_hit"),
		ctrTLBMiss:   o.R.Counter("vm.tlb_miss"),
		ctrICFill:    o.R.Counter("vm.icache_fill"),
		ctrICInval:   o.R.Counter("vm.icache_invalidate"),
		ctrBlkBuild:  o.R.Counter("vm.block_build"),
		ctrBlkHit:    o.R.Counter("vm.block_hit"),
		ctrBlkInval:  o.R.Counter("vm.block_invalidate"),
		ctrFusedOps:  o.R.Counter("vm.fused_ops"),
		ctrASMaps:    o.R.Counter("addrspace.pages_mapped"),
		ctrASUnmaps:  o.R.Counter("addrspace.pages_unmapped"),
		ctrZygReg:    o.R.Counter("kern.zygote_register"),
		ctrZygClone:  o.R.Counter("kern.zygote_clone"),
		hRunSteps:    o.R.Histogram("kern.run_steps"),
		zygotes:      map[string]*zygote{},
		nextZPID:     zygotePIDBase,
	}
	phys.RegisterObsv(o.R)
	fs.Observe(o.T, o.R.Counter("shmfs.creates"), o.R.Counter("shmfs.opens"))
	return k
}

// openFile is one open file description.
type openFile struct {
	path   string
	offset uint32
	write  bool
}

// Process is a simulated Unix process.
type Process struct {
	K    *Kernel
	PID  int
	PPID int
	UID  int
	AS   *addrspace.Space
	CPU  *vm.CPU
	Env  map[string]string
	CWD  string

	// Handler is the Hemlock run-time fault handler installed by crt0;
	// UserHandler is a program-provided SIGSEGV handler, invoked only when
	// the dynamic linking system's handler cannot resolve a fault.
	Handler     FaultHandler
	UserHandler FaultHandler

	// BreakHandler services BREAK traps: ldl installs one when the image
	// has jump-table stubs (the SunOS-style lazy function linking). The
	// handler adjusts the CPU state (typically rewinding PC to the patched
	// stub) and returns nil to resume.
	BreakHandler func(p *Process) error

	// CloneRuntime, when set, duplicates the per-process runtime state
	// (the dynamic linker's bookkeeping) for a forked child. ldl installs
	// it so that fork — which the paper retains "by weight of precedent"
	// — leaves the child with working fault handling at its own (copied)
	// private instances and the shared public ones.
	CloneRuntime func(parent, child *Process)

	// Runtime carries the per-process dynamic-linker state (owned by
	// package ldl; the kernel treats it as opaque).
	Runtime interface{}

	Stdout bytes.Buffer

	files  map[int]*openFile
	nextFD int

	brk      uint32 // heap break
	privBase uint32 // bump allocator for dynamic private module instances
	callStub uint32 // CallFunction's return-stub page (0 until first call)

	mappedSlots map[int]bool // shared-fs inodes currently mapped

	Exited   bool
	ExitCode int
}

// Spawn creates an empty process (no load image yet) for uid.
func (k *Kernel) Spawn(uid int) *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := &Process{
		K:           k,
		PID:         k.nextPID,
		UID:         uid,
		AS:          addrspace.New(k.Phys),
		Env:         map[string]string{},
		CWD:         "/",
		files:       map[int]*openFile{},
		nextFD:      3,
		privBase:    layout.PrivDataBase + 0x10000000, // dynamic private instances
		mappedSlots: map[int]bool{},
	}
	p.CPU = vm.New(p.AS)
	p.CPU.CtrTraps = k.ctrVMTraps
	p.CPU.CtrTLBHit = k.ctrTLBHit
	p.CPU.CtrTLBMiss = k.ctrTLBMiss
	p.CPU.CtrICFill = k.ctrICFill
	p.CPU.CtrICInval = k.ctrICInval
	p.CPU.CtrBlockBuild = k.ctrBlkBuild
	p.CPU.CtrBlockHit = k.ctrBlkHit
	p.CPU.CtrBlockInval = k.ctrBlkInval
	p.CPU.CtrFusedOps = k.ctrFusedOps
	p.AS.Observe(k.Obs.Tracer(), k.ctrASMaps, k.ctrASUnmaps, p.PID)
	k.nextPID++
	k.procs[p.PID] = p
	if t := k.Obs.Tracer(); t.Enabled() {
		t.Emit(obsv.Event{Subsys: "kern", Name: "spawn", PID: p.PID, Val: uint64(uid)})
	}
	return p
}

// Process returns the process with the given pid.
func (k *Kernel) Process(pid int) (*Process, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[pid]
	return p, ok
}

// Processes returns the live process list in pid order.
func (k *Kernel) Processes() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		if !p.Exited {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Getenv reads an environment variable.
func (p *Process) Getenv(key string) string { return p.Env[key] }

// Setenv sets an environment variable ("by modifying environment variables
// prior to execution, we can arrange for new processes to find shared data
// in a temporary directory").
func (p *Process) Setenv(key, value string) { p.Env[key] = value }

// ---- exec ------------------------------------------------------------------

// Exec maps a load image into the (empty) process: text, data, bss, a
// stack, and an initial heap break. The caller (package core) then runs the
// crt0 sequence, which invokes ldl before main.
func (p *Process) Exec(im *objfile.Image) error {
	if p.Exited {
		return ErrExited
	}
	// Map the whole image span as one RWX region. Text, data and bss may
	// share pages (the linkers lay modules out contiguously), and the
	// trampoline area past bss must be executable, so per-section
	// protection is not possible at page granularity. Shared modules get
	// real per-slot protection via MapSharedFile and ldl.
	lo := addrspace.PageBase(im.TextBase)
	hi := im.TextBase + uint32(len(im.Text))
	if e := im.DataBase + uint32(len(im.Data)); len(im.Data) > 0 && e > hi {
		hi = e
	}
	if e := im.BssBase + im.BssSize; im.BssSize > 0 && e > hi {
		hi = e
	}
	if dlo := addrspace.PageBase(im.DataBase); len(im.Data) > 0 && dlo < lo {
		lo = dlo
	}
	hi = pageCeil(hi)
	t := p.K.Obs.Tracer()
	execSpan := t.Begin("kern", "exec", p.PID, im.Name)
	mapSpan := t.Begin("kern", "map_pages", p.PID, im.Name)
	if hi > lo {
		if err := p.AS.MapAnon(lo, hi-lo, addrspace.ProtRWX); err != nil {
			return fmt.Errorf("kern: exec %s image: %w", im.Name, err)
		}
	}
	// Stack: map only the eager top of the window; the rest is demand-zero
	// (HandleFault grows it), so launch cost tracks pages used, not the
	// full 256 KB window.
	stackBase := layout.StackTop - layout.StackEagerSize
	if err := p.AS.MapAnon(stackBase, layout.StackEagerSize, addrspace.ProtRW); err != nil {
		return fmt.Errorf("kern: exec %s stack: %w", im.Name, err)
	}
	mapSpan.End(uint64(addrspace.PageCount(hi-lo) + addrspace.PageCount(layout.StackEagerSize)))
	writeSpan := t.Begin("kern", "write_image", p.PID, im.Name)
	if len(im.Text) > 0 {
		if _, err := p.AS.Write(im.TextBase, im.Text); err != nil {
			return fmt.Errorf("kern: exec %s text: %w", im.Name, err)
		}
	}
	if len(im.Data) > 0 {
		if _, err := p.AS.Write(im.DataBase, im.Data); err != nil {
			return fmt.Errorf("kern: exec %s data: %w", im.Name, err)
		}
	}
	writeSpan.End(uint64(len(im.Text) + len(im.Data)))
	execSpan.End(0)
	p.CPU.Regs[29] = layout.StackTop - 16 // $sp
	p.CPU.PC = im.Entry
	p.brk = pageCeil(im.BssBase + im.BssSize)
	if p.brk < layout.PrivDataBase {
		p.brk = layout.PrivDataBase
	}
	return nil
}

func pageCeil(v uint32) uint32 { return (v + mem.PageSize - 1) &^ (mem.PageSize - 1) }

// Sbrk grows the heap by n bytes and returns the previous break.
func (p *Process) Sbrk(n uint32) (uint32, error) {
	old := p.brk
	if n == 0 {
		return old, nil
	}
	newBrk := pageCeil(old + n)
	if newBrk > layout.PrivDataLimit {
		return 0, fmt.Errorf("kern: sbrk beyond private data region")
	}
	if newBrk > old {
		if err := p.AS.MapAnon(old, newBrk-old, addrspace.ProtRW); err != nil {
			return 0, err
		}
	}
	p.brk = newBrk
	return old, nil
}

// AllocPrivate carves out a page-aligned private region for a dynamic
// private module instance and returns its base.
func (p *Process) AllocPrivate(size uint32) (uint32, error) {
	base := p.privBase
	end := pageCeil(base + size)
	if end > layout.PrivDataLimit {
		return 0, fmt.Errorf("kern: private module region exhausted")
	}
	if err := p.AS.MapAnon(base, end-base, addrspace.ProtRWX); err != nil {
		return 0, err
	}
	p.privBase = end
	return base, nil
}

// ---- fork ------------------------------------------------------------------

// Fork creates a child process: "The child process that results from a
// fork receives a copy of each segment in the private portion of the
// parent's address space, and shares the single copy of each segment in
// the public portion." Parent and child come out with identical program
// counters and registers.
func (k *Kernel) Fork(parent *Process) (*Process, error) {
	child := k.Spawn(parent.UID)
	k.forkInto(parent, child)
	k.ctrForks.Inc()
	if t := k.Obs.Tracer(); t.Enabled() {
		t.Emit(obsv.Event{Subsys: "kern", Name: "fork", PID: parent.PID, Val: uint64(child.PID)})
	}
	return child, nil
}

// forkInto populates a freshly spawned child with a copy of parent's state.
// The private halves of the address space clone copy-on-write: the child
// costs one page-table entry and one refcount per page, and whichever side
// stores to a page first pays for its own copy. The public window is shared
// outright, per the paper.
func (k *Kernel) forkInto(parent, child *Process) {
	child.PPID = parent.PID
	child.CWD = parent.CWD
	for key, v := range parent.Env {
		child.Env[key] = v
	}
	// One pass over the parent's page table: private windows clone
	// copy-on-write, the public window shares frames outright.
	parent.AS.ForkInto(child.AS, layout.SharedBase, layout.SharedLimit, layout.KernelBase)
	// Identical CPU state, reusing the CPU Spawn allocated for the child.
	child.CPU.AdoptArchState(parent.CPU)
	child.brk = parent.brk
	child.privBase = parent.privBase
	child.callStub = parent.callStub // stub page is in the cloned private range
	for ino := range parent.mappedSlots {
		child.mappedSlots[ino] = true
	}
	child.Handler = parent.Handler
	child.UserHandler = parent.UserHandler
	child.BreakHandler = parent.BreakHandler
	child.CloneRuntime = parent.CloneRuntime
	if parent.CloneRuntime != nil {
		parent.CloneRuntime(parent, child)
	}
}

// Exit terminates the process, reclaiming its private segments. Segments
// shared between processes are NOT reclaimed — that is the garbage
// collection problem the paper discusses; shared files persist until
// explicitly destroyed.
func (p *Process) Exit(code int) {
	if p.Exited {
		return
	}
	p.Exited = true
	p.ExitCode = code
	p.CPU.ReleaseCaches()
	p.AS.Release()
	p.K.mu.Lock()
	delete(p.K.procs, p.PID)
	p.K.mu.Unlock()
	p.K.ctrExits.Inc()
	if t := p.K.Obs.Tracer(); t.Enabled() {
		t.Emit(obsv.Event{Subsys: "kern", Name: "exit", PID: p.PID, Val: uint64(uint32(code))})
	}
}

// ---- fault delivery ---------------------------------------------------------

// HandleFault delivers a memory fault to the process's user-level
// handlers: first the Hemlock run-time handler, then — if it cannot
// resolve the fault — the program-provided SIGSEGV handler, if one exists.
// A nil return means the faulting instruction should be restarted.
func (k *Kernel) HandleFault(p *Process, f *addrspace.Fault) error {
	k.mu.Lock()
	k.FaultCount++
	k.mu.Unlock()
	k.ctrFaults.Inc()
	if t := k.Obs.Tracer(); t.Enabled() {
		t.Emit(obsv.Event{Subsys: "kern", Name: "fault", PID: p.PID, Addr: f.Addr, Val: uint64(f.Access)})
	}
	// Demand-zero stack growth: an unmapped page inside the stack window is
	// the kernel's to resolve, before any user-level handler sees it.
	if f.Unmapped && f.Addr >= layout.StackTop-layout.DefaultStackSize && f.Addr < layout.StackTop {
		if err := p.AS.MapAnon(addrspace.PageBase(f.Addr), mem.PageSize, addrspace.ProtRW); err != nil {
			return fmt.Errorf("%w: %v (stack growth failed: %v, pid %d)", ErrUnhandled, f, err, p.PID)
		}
		k.ctrStackGrow.Inc()
		return nil
	}
	if p.Handler != nil {
		err := p.Handler(p, f)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrUnhandled) {
			return err
		}
	}
	if p.UserHandler != nil {
		err := p.UserHandler(p, f)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrUnhandled) {
			return err
		}
	}
	return fmt.Errorf("%w: %v (segmentation fault, pid %d)", ErrUnhandled, f, p.PID)
}

// MapSharedFile maps the shared-fs file at path into the process at the
// file's fixed address, sized to whole pages covering size bytes (or the
// current file size if larger). The mapping aliases the file's frames, so
// loads and stores ARE file reads and writes.
func (k *Kernel) MapSharedFile(p *Process, path string, size uint32, prot addrspace.Prot) (shmfs.Stat, error) {
	write := prot&addrspace.ProtWrite != 0
	sp := k.Obs.Tracer().Begin("kern", "map_shared", p.PID, path)
	frames, st, err := k.FS.Frames(path, size, p.UID, write)
	if err != nil {
		sp.End(0)
		return shmfs.Stat{}, err
	}
	if p.mappedSlots[st.Ino] {
		sp.End(0)
		return st, nil // already mapped; idempotent
	}
	need := int(addrspace.PageCount(st.Size))
	if need == 0 {
		need = 1
		// Map at least one page so the segment is addressable.
		frames, st, err = k.FS.Frames(path, mem.PageSize, p.UID, write)
		if err != nil {
			return shmfs.Stat{}, err
		}
	}
	if err := p.AS.MapFrames(st.Addr, frames[:need], prot); err != nil {
		sp.End(0)
		return shmfs.Stat{}, err
	}
	p.mappedSlots[st.Ino] = true
	sp.End(uint64(need))
	return st, nil
}

// SlotMapped reports whether the shared slot for inode ino is mapped.
func (p *Process) SlotMapped(ino int) bool { return p.mappedSlots[ino] }

// UnmapSharedSlot removes the mapping of a shared slot from this process
// (the file itself persists).
func (p *Process) UnmapSharedSlot(ino int) {
	if !p.mappedSlots[ino] {
		return
	}
	p.AS.Unmap(shmfs.AddrOf(ino), shmfs.SlotSize)
	delete(p.mappedSlots, ino)
}

// ---- fault-retrying memory access (hosted programs) -------------------------

// maxFaultRetries bounds handler-retry loops: a handler that "resolves" a
// fault without making progress must not hang the kernel.
const maxFaultRetries = 64

func (p *Process) retrying(access func() error) error {
	for i := 0; i < maxFaultRetries; i++ {
		err := access()
		if err == nil {
			return nil
		}
		f, ok := addrspace.IsFault(err)
		if !ok {
			return err
		}
		if herr := p.K.HandleFault(p, f); herr != nil {
			return herr
		}
	}
	return fmt.Errorf("kern: fault retry limit exceeded (pid %d)", p.PID)
}

// ReadMem reads memory with fault handling, exactly as a load instruction
// would: unmapped shared segments are faulted in by the handler.
func (p *Process) ReadMem(addr uint32, buf []byte) error {
	done := 0
	return p.retrying(func() error {
		n, err := p.AS.Read(addr+uint32(done), buf[done:])
		done += n
		return err
	})
}

// WriteMem writes memory with fault handling.
func (p *Process) WriteMem(addr uint32, buf []byte) error {
	done := 0
	return p.retrying(func() error {
		n, err := p.AS.Write(addr+uint32(done), buf[done:])
		done += n
		return err
	})
}

// LoadWord loads a word with fault handling.
func (p *Process) LoadWord(addr uint32) (uint32, error) {
	var v uint32
	err := p.retrying(func() error {
		var e error
		v, e = p.AS.LoadWord(addr)
		return e
	})
	return v, err
}

// StoreWord stores a word with fault handling.
func (p *Process) StoreWord(addr, val uint32) error {
	return p.retrying(func() error { return p.AS.StoreWord(addr, val) })
}

// LoadByte loads a byte with fault handling.
func (p *Process) LoadByte(addr uint32) (byte, error) {
	var v byte
	err := p.retrying(func() error {
		var e error
		v, e = p.AS.LoadByte(addr)
		return e
	})
	return v, err
}

// StoreByte stores a byte with fault handling.
func (p *Process) StoreByte(addr uint32, val byte) error {
	return p.retrying(func() error { return p.AS.StoreByte(addr, val) })
}

// CString reads a NUL-terminated string with fault handling (capped at 4096
// bytes).
func (p *Process) CString(addr uint32) (string, error) {
	var out []byte
	for i := uint32(0); i < 4096; i++ {
		b, err := p.LoadByte(addr + i)
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", fmt.Errorf("kern: unterminated string at 0x%08x", addr)
}
