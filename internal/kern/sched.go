package kern

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"hemlock/internal/obsv"
)

// True SMP. The paper's SGI 4D/480 had 8 CPUs and Presto exists to exploit
// them; this scheduler gives the simulated machine the same shape. Each
// guest CPU is a host goroutine running the resumable runSlice loop, so N
// processes genuinely execute in parallel. The design is the classic
// M-on-N one:
//
//   - per-CPU run queues: a task (a process plus its remaining step
//     budget) is submitted to one CPU's queue and preempted back onto the
//     tail of that same queue, so a process tends to stay on one CPU and
//     keep its warm D/I-TLBs, icache and block cache (which are all
//     per-CPU state already).
//   - preemption: a task runs one quantum (DefaultQuantum retired
//     instructions) per slice; round-robin within the CPU interleaves
//     runnable processes.
//   - work stealing: a CPU with an empty queue takes work from the longest
//     sibling queue, so one long-running process cannot strand runnable
//     work behind it.
//   - idle park/wake: a CPU that finds no work anywhere parks on a
//     condition variable; submitting or requeueing work wakes it.
//
// Deterministic mode (SchedConfig.Det) runs the same task set on ONE
// goroutine, interleaving slices round-robin with seeded variable quanta —
// a virtual SMP whose schedule is a pure function of the seed. The SMP
// differential harness uses it to explore many interleavings exactly and
// to replay any divergence; free-running mode is then validated against it
// by StateHash equality at quiesce.
//
// Safety rests on the memory-model work that accompanied this scheduler:
// every word-granular guest access is a host-atomic access to the backing
// frame word, guest atomics (atomic.go) are host atomics, and the
// gen/store-version invalidation protocol was already lock-free on the
// read side. See docs/SMP.md.

// DefaultQuantum is the preemption slice in retired instructions.
const DefaultQuantum = 50_000

// MaxCPUs caps the default CPU count, matching the paper's 8-CPU 4D/480.
const MaxCPUs = 8

// DefaultCPUs returns the guest CPU count: HEMLOCK_CPUS if set, else the
// host's CPU count capped at MaxCPUs.
func DefaultCPUs() int {
	if v := os.Getenv("HEMLOCK_CPUS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			return n
		}
	}
	n := runtime.NumCPU()
	if n > MaxCPUs {
		n = MaxCPUs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SchedConfig configures a Scheduler.
type SchedConfig struct {
	CPUs    int    // guest CPUs; 0 means DefaultCPUs()
	Det     bool   // deterministic mode: seeded virtual interleaving on one goroutine
	Seed    int64  // schedule seed (Det mode)
	Quantum uint64 // preemption slice in steps; 0 means DefaultQuantum
}

// Task is one scheduled unit: a process being driven to completion under a
// step budget.
type Task struct {
	s      *Scheduler
	p      *Process
	budget uint64
	steps  uint64
	err    error
	cpu    int // home CPU (queue affinity)
	done   chan struct{}
}

// Wait blocks until the task finishes and returns the steps it retired and
// its error (nil means the process exited). In deterministic mode Wait is
// also the engine: the virtual CPU runs on the waiting goroutine, so the
// whole schedule is a pure function of the seed and the submission order.
func (t *Task) Wait() (uint64, error) {
	if t.s != nil && t.s.det {
		t.s.detDrive(t)
	}
	<-t.done
	return t.steps, t.err
}

// Scheduler multiplexes processes over N concurrent guest CPUs.
type Scheduler struct {
	k       *Kernel
	ncpu    int
	quantum uint64
	det     bool
	rng     *rand.Rand // det-mode schedule source; nil in free-running mode

	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]*Task
	submit int // round-robin home-CPU assignment
	closed bool

	wg sync.WaitGroup

	// Per-CPU retired-step counts, exported as kern.cpu<i>_steps gauges:
	// the utilization picture (a CPU far behind its siblings is idle or
	// starved).
	cpuSteps []atomic.Uint64

	ctrSteps  *obsv.Counter // kern.cpu_steps: total steps retired by scheduled slices
	ctrSteals *obsv.Counter // kern.cpu_steals: tasks taken from a sibling queue
	ctrParks  *obsv.Counter // kern.cpu_parks: idle CPUs going to sleep
}

// NewScheduler builds a scheduler for k and starts its CPU goroutines.
// Deterministic mode starts none: the virtual CPU runs inside Task.Wait on
// the client goroutine, so no host-scheduler nondeterminism can reach the
// schedule. Call Stop to shut it down.
func NewScheduler(k *Kernel, cfg SchedConfig) *Scheduler {
	n := cfg.CPUs
	if n <= 0 {
		n = DefaultCPUs()
	}
	if cfg.Det {
		n = 1 // one goroutine IS the deterministic mode
	}
	q := cfg.Quantum
	if q == 0 {
		q = DefaultQuantum
	}
	s := &Scheduler{
		k:        k,
		ncpu:     n,
		quantum:  q,
		det:      cfg.Det,
		queues:   make([][]*Task, n),
		cpuSteps: make([]atomic.Uint64, n),
		ctrSteps: k.Obs.R.Counter("kern.cpu_steps"),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Det {
		s.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		s.ctrSteals = k.Obs.R.Counter("kern.cpu_steals")
		s.ctrParks = k.Obs.R.Counter("kern.cpu_parks")
	}
	for i := 0; i < n; i++ {
		i := i
		k.Obs.R.GaugeFunc(fmt.Sprintf("kern.cpu%d_steps", i), func() int64 {
			return int64(s.cpuSteps[i].Load())
		})
	}
	if !cfg.Det {
		s.wg.Add(n)
		for i := 0; i < n; i++ {
			go s.cpu(i)
		}
	}
	return s
}

// CPUs returns the number of guest CPUs.
func (s *Scheduler) CPUs() int { return s.ncpu }

// AttachScheduler publishes s as the kernel's scheduler (see Kernel.Sched).
func (k *Kernel) AttachScheduler(s *Scheduler) { k.sched.Store(s) }

// DetachScheduler clears the attached scheduler (the caller still owns
// stopping it).
func (k *Kernel) DetachScheduler() { k.sched.Store(nil) }

// Sched returns the attached scheduler, or nil when the kernel runs
// single-CPU.
func (k *Kernel) Sched() *Scheduler { return k.sched.Load() }

// Submit queues p to run for at most maxSteps retired instructions and
// returns a Task to wait on. Each process may be on at most one task at a
// time — a process is a single guest CPU's worth of architectural state.
func (s *Scheduler) Submit(p *Process, maxSteps uint64) *Task {
	t := &Task{s: s, p: p, budget: maxSteps, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		t.err = fmt.Errorf("kern: scheduler is stopped")
		close(t.done)
		return t
	}
	t.cpu = s.submit % s.ncpu
	s.submit++
	s.queues[t.cpu] = append(s.queues[t.cpu], t)
	s.mu.Unlock()
	s.cond.Broadcast()
	return t
}

// Run submits p and waits: the synchronous form clients use in place of
// Kernel.Run when a scheduler owns the CPUs.
func (s *Scheduler) Run(p *Process, maxSteps uint64) (uint64, error) {
	return s.Submit(p, maxSteps).Wait()
}

// RunAll submits every process and waits for all of them, returning the
// first error. This is the workload entry point: all tasks exist before
// any CPU can finish, so the interleaving genuinely overlaps.
func (s *Scheduler) RunAll(ps []*Process, maxSteps uint64) error {
	tasks := make([]*Task, len(ps))
	for i, p := range ps {
		tasks[i] = s.Submit(p, maxSteps)
	}
	var first error
	for _, t := range tasks {
		if _, err := t.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stop drains queued work, waits for the CPU goroutines to exit, and
// leaves the scheduler unusable.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// next returns the next task for CPU id: local queue head, else steal from
// the longest sibling queue, else park until woken. Returns nil when the
// scheduler is stopped and no work remains.
func (s *Scheduler) next(id int) *Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if q := s.queues[id]; len(q) > 0 {
			t := q[0]
			s.queues[id] = q[1:]
			return t
		}
		// Steal: take the head of the longest sibling queue. Head, not
		// tail — the head task has waited longest, so stealing it is also
		// the fairness path.
		victim, best := -1, 0
		for i, q := range s.queues {
			if i != id && len(q) > best {
				victim, best = i, len(q)
			}
		}
		if victim >= 0 {
			q := s.queues[victim]
			t := q[0]
			s.queues[victim] = q[1:]
			t.cpu = id // migrates: future requeues stay here
			if s.ctrSteals != nil {
				s.ctrSteals.Inc()
			}
			return t
		}
		if s.closed {
			return nil
		}
		if s.ctrParks != nil {
			s.ctrParks.Inc()
		}
		s.cond.Wait()
	}
}

// cpu is one guest CPU: a host goroutine interleaving preemption-quantum
// slices of the tasks queued to it.
func (s *Scheduler) cpu(id int) {
	defer s.wg.Done()
	for {
		t := s.next(id)
		if t == nil {
			return
		}
		s.slice(id, t)
	}
}

// slice runs one preemption quantum of t on CPU id, then finishes or
// requeues it.
func (s *Scheduler) slice(id int, t *Task) {
	quantum := s.sliceQuantum()
	if quantum > t.budget {
		quantum = t.budget
	}
	span := s.k.Obs.Tracer().Begin("sched", "slice", t.p.PID, "")
	n, done, err := s.k.runSlice(t.p, quantum)
	span.End(n)
	t.steps += n
	if n > t.budget {
		t.budget = 0
	} else {
		t.budget -= n
	}
	s.cpuSteps[id].Add(n)
	s.ctrSteps.Add(n)
	switch {
	case err != nil:
		s.finish(t, err)
	case done:
		s.finish(t, nil)
	case t.budget == 0:
		s.finish(t, fmt.Errorf("kern: pid %d exceeded %d steps", t.p.PID, t.steps))
	default:
		// Preempted: back of the home queue, siblings run first.
		s.mu.Lock()
		s.queues[t.cpu] = append(s.queues[t.cpu], t)
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}

// detDrive runs the deterministic virtual CPU until t finishes: strict
// round-robin over the single queue with seeded quanta. The caller must be
// the scheduler's only client (the differential harness is), or the
// interleaving of Submit calls would perturb the schedule.
func (s *Scheduler) detDrive(t *Task) {
	for {
		select {
		case <-t.done:
			return
		default:
		}
		s.mu.Lock()
		var next *Task
		if q := s.queues[0]; len(q) > 0 {
			next = q[0]
			s.queues[0] = q[1:]
		}
		s.mu.Unlock()
		if next == nil {
			// t is neither done nor queued: it is mid-flight on a nested
			// detDrive (not a supported shape) or lost. Fail loudly.
			s.finish(t, fmt.Errorf("kern: det scheduler has no runnable task for pid %d", t.p.PID))
			return
		}
		s.slice(0, next)
	}
}

// sliceQuantum is the next preemption slice. Free-running CPUs use the
// fixed quantum; deterministic mode draws a seeded variable quantum, so
// different seeds explore different interleavings of the same workload
// while any one seed replays its schedule exactly.
func (s *Scheduler) sliceQuantum() uint64 {
	if s.rng == nil {
		return s.quantum
	}
	// 1..quantum, seeded: short slices interleave aggressively, long ones
	// let a process burst — both shapes show up across seeds.
	return 1 + uint64(s.rng.Int63n(int64(s.quantum)))
}

// finish completes a task, mirroring what Kernel.Run does after its loop:
// flush the CPU's cached stats and feed the kernel-wide step instruments.
func (s *Scheduler) finish(t *Task, err error) {
	t.p.CPU.FlushObsv()
	s.k.ctrSteps.Add(t.steps)
	s.k.hRunSteps.Observe(t.steps)
	t.err = err
	close(t.done)
}
