package kern

import (
	"sort"

	"hemlock/internal/obsv"
	"hemlock/internal/vm"

	"hemlock/internal/addrspace"
)

// Zygote launches: after a cold launch has fully linked, the kernel can park
// a snapshot of the linked process as a hidden template and satisfy later
// identical launches by CoW-forking the template — the steady-state launch
// cost becomes a fork, not a link. Templates are keyed by the same content
// hash as the ldl link cache (image bytes + search path + uid + environment),
// so a key match means "this launch would reach a bit-identical post-link
// state"; the differential harness holds that to StateHash equality.
//
// Templates deliberately live outside the process table and outside the
// normal PID sequence: guests can observe PIDs (SysGetPID), and a world that
// warms zygotes must hand out exactly the same PIDs as a world that links
// every launch cold.

// zygotePIDBase is where hidden template PIDs start — far above any PID the
// sequential allocator will reach, and never visible to a guest (templates
// are parked and never run).
const zygotePIDBase = 1 << 30

// MaxZygotes caps the registry; registering past the cap evicts the oldest
// template (registration order) and releases its address space.
const MaxZygotes = 64

// Hidden reports whether p is a parked zygote template rather than a real
// process: outside the process table, never run, invisible to guests.
// Accounting that tracks per-process state (e.g. the linker's pending-reloc
// aggregate) skips hidden processes.
func (p *Process) Hidden() bool { return p.PID >= zygotePIDBase }

type zygote struct {
	key      string
	template *Process
	clones   uint64
}

// ZygoteInfo describes one registered template for inspection (server
// /api/info, doctor).
type ZygoteInfo struct {
	Key    string `json:"key"`
	PID    int    `json:"pid"`
	Pages  int    `json:"pages"`
	Clones uint64 `json:"clones"`
}

// spawnZygote creates a hidden process: same wiring as Spawn, but the PID
// comes from the zygote range and the process is not entered in the process
// table, so Processes(), PID allocation, and the trace stream are exactly
// what they would be in a world without zygotes.
func (k *Kernel) spawnZygote(uid int) *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := &Process{
		K:           k,
		PID:         k.nextZPID,
		UID:         uid,
		AS:          addrspace.New(k.Phys),
		Env:         map[string]string{},
		CWD:         "/",
		files:       map[int]*openFile{},
		nextFD:      3,
		mappedSlots: map[int]bool{},
	}
	p.CPU = vm.New(p.AS)
	p.AS.Observe(k.Obs.Tracer(), k.ctrASMaps, k.ctrASUnmaps, p.PID)
	k.nextZPID++
	return p
}

// RegisterZygote snapshots parent (which must be freshly linked and not yet
// run) as the template for key. A template already registered under key
// wins; registration is idempotent.
func (k *Kernel) RegisterZygote(key string, parent *Process) {
	k.zmu.Lock()
	_, exists := k.zygotes[key]
	k.zmu.Unlock()
	if exists || parent.Exited {
		return
	}
	tpl := k.spawnZygote(parent.UID)
	k.forkInto(parent, tpl)
	tpl.PPID = 0

	k.zmu.Lock()
	defer k.zmu.Unlock()
	if _, raced := k.zygotes[key]; raced {
		tpl.AS.Release()
		return
	}
	for len(k.zorder) >= MaxZygotes {
		oldest := k.zorder[0]
		k.zorder = k.zorder[1:]
		if z, ok := k.zygotes[oldest]; ok {
			z.template.AS.Release()
			delete(k.zygotes, oldest)
		}
	}
	k.zygotes[key] = &zygote{key: key, template: tpl}
	k.zorder = append(k.zorder, key)
	k.ctrZygReg.Inc()
	if t := k.Obs.Tracer(); t.Enabled() {
		t.Emit(obsv.Event{Subsys: "kern", Name: "zygote_register", PID: parent.PID, Val: uint64(len(k.zygotes))})
	}
}

// CloneZygote satisfies a launch from the template registered under key: the
// returned process is a normal table-registered process (next sequential
// PID) whose address space is a CoW clone of the fully linked template.
// Returns false if no template is registered.
func (k *Kernel) CloneZygote(key string) (*Process, bool) {
	k.zmu.Lock()
	z, ok := k.zygotes[key]
	if ok {
		z.clones++
	}
	k.zmu.Unlock()
	if !ok {
		return nil, false
	}
	child := k.Spawn(z.template.UID)
	k.forkInto(z.template, child)
	child.PPID = 0
	k.ctrZygClone.Inc()
	return child, true
}

// HasZygote reports whether a template is registered under key.
func (k *Kernel) HasZygote(key string) bool {
	k.zmu.Lock()
	defer k.zmu.Unlock()
	_, ok := k.zygotes[key]
	return ok
}

// DropZygote removes the template for key (because its backing modules
// changed, or the link cache invalidated) and releases its address space.
func (k *Kernel) DropZygote(key string) {
	k.zmu.Lock()
	defer k.zmu.Unlock()
	z, ok := k.zygotes[key]
	if !ok {
		return
	}
	z.template.AS.Release()
	delete(k.zygotes, key)
	for i, kk := range k.zorder {
		if kk == key {
			k.zorder = append(k.zorder[:i], k.zorder[i+1:]...)
			break
		}
	}
}

// DropAllZygotes empties the registry, releasing every template.
func (k *Kernel) DropAllZygotes() {
	k.zmu.Lock()
	defer k.zmu.Unlock()
	for key, z := range k.zygotes {
		z.template.AS.Release()
		delete(k.zygotes, key)
	}
	k.zorder = nil
}

// Zygotes returns the registry contents sorted by key.
func (k *Kernel) Zygotes() []ZygoteInfo {
	k.zmu.Lock()
	defer k.zmu.Unlock()
	out := make([]ZygoteInfo, 0, len(k.zygotes))
	for key, z := range k.zygotes {
		out = append(out, ZygoteInfo{
			Key:    key,
			PID:    z.template.PID,
			Pages:  z.template.AS.PageCountMapped(),
			Clones: z.clones,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
