package kern

// Synchronous function calls into a parked process: the mechanism the
// serve daemon uses to invoke an exported public function on behalf of a
// client without running the program's main. The kernel plants a one-page
// "call return" stub (a single BREAK instruction) in the process's private
// region, points $ra at it, sets the argument registers, and runs the CPU
// from the target. When the callee returns, the BREAK traps back here and
// the call's result is read out of $v0.
//
// The target address may be anything the dynamic linker can reach: a
// function in the image, a jump-table (PLT) stub — whose first call traps
// and patches exactly as a compiled call would — or a symbol in a public
// module that has not even been mapped yet, in which case the first fetch
// faults and ldl links the module before the first instruction retires.
// The existing BreakHandler (ldl's PLT patcher) keeps working: the call
// wrapper chains to it for any BREAK that is not the return stub.

import (
	"errors"
	"fmt"

	"hemlock/internal/isa"
	"hemlock/internal/mem"
)

// ErrCallExited reports that the called function terminated the process
// (an exit syscall or HALT) instead of returning to its caller.
var ErrCallExited = errors.New("kern: called function exited the process")

// errCallReturn is the internal sentinel the return stub's BREAK raises to
// stop the run loop; CallFunction absorbs it.
var errCallReturn = errors.New("kern: call returned")

// ensureCallStub lazily maps the per-process return stub page and returns
// the stub address.
func (p *Process) ensureCallStub() (uint32, error) {
	if p.callStub != 0 {
		return p.callStub, nil
	}
	base, err := p.AllocPrivate(mem.PageSize)
	if err != nil {
		return 0, fmt.Errorf("kern: mapping call stub: %w", err)
	}
	if err := p.AS.StoreWord(base, isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0)); err != nil {
		return 0, err
	}
	p.callStub = base
	return base, nil
}

// CallFunction invokes target as a subroutine on a (parked) process: args
// land in $a0-$a3, $ra is pointed at the return stub, and the CPU runs
// from target until the callee returns (result: $v0), the process exits
// (ErrCallExited), or maxSteps elapse. PC and $ra are restored afterwards,
// so a resident process can serve any number of calls.
func (k *Kernel) CallFunction(p *Process, target uint32, args [4]uint32, maxSteps uint64) (ret uint32, steps uint64, err error) {
	if p.Exited {
		return 0, 0, ErrExited
	}
	stub, err := p.ensureCallStub()
	if err != nil {
		return 0, 0, err
	}
	saved := p.BreakHandler
	p.BreakHandler = func(pp *Process) error {
		// BREAK leaves PC just past the trapping instruction.
		if pp.CPU.PC == stub+4 {
			return errCallReturn
		}
		if saved != nil {
			return saved(pp)
		}
		return fmt.Errorf("kern: pid %d hit break at 0x%08x during call", pp.PID, pp.CPU.PC)
	}
	savedPC, savedRA := p.CPU.PC, p.CPU.Regs[31]
	defer func() {
		p.BreakHandler = saved
		if !p.Exited {
			p.CPU.PC, p.CPU.Regs[31] = savedPC, savedRA
		}
	}()
	for i, a := range args {
		p.CPU.Regs[4+i] = a // $a0..$a3
	}
	p.CPU.Regs[31] = stub
	p.CPU.PC = target
	steps, runErr := k.Run(p, maxSteps)
	switch {
	case errors.Is(runErr, errCallReturn):
		return p.CPU.Regs[2], steps, nil // $v0
	case runErr != nil:
		return 0, steps, runErr
	case p.Exited:
		return 0, steps, fmt.Errorf("%w (exit %d)", ErrCallExited, p.ExitCode)
	default:
		return 0, steps, fmt.Errorf("kern: call to 0x%08x stopped without returning", target)
	}
}
