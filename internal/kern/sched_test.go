package kern

import (
	"fmt"
	"testing"

	"hemlock/internal/shmfs"
	"hemlock/internal/vm"
)

// countdownSrc is a small compute loop: count $t0 down from n, exit(code).
func countdownSrc(n int, code int) string {
	return fmt.Sprintf(`
        .text
        li      $t0, %d
loop:   addiu   $t0, $t0, -1
        bnez    $t0, loop
        li      $a0, %d
        li      $v0, 1
        syscall
`, n, code)
}

func spawnWith(t *testing.T, k *Kernel, src string) *Process {
	t.Helper()
	p := k.Spawn(0)
	if err := p.Exec(buildImage(t, src)); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSchedulerRunsManyProcesses: more runnable processes than CPUs, every
// one runs to completion with its own exit code.
func TestSchedulerRunsManyProcesses(t *testing.T) {
	k := New()
	s := NewScheduler(k, SchedConfig{CPUs: 3, Quantum: 1000})
	defer s.Stop()
	var ps []*Process
	for i := 0; i < 9; i++ {
		ps = append(ps, spawnWith(t, k, countdownSrc(20_000+i*1000, 40+i)))
	}
	if err := s.RunAll(ps, 1_000_000); err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if !p.Exited || p.ExitCode != 40+i {
			t.Fatalf("process %d: exited=%v code=%d, want 40+%d", i, p.Exited, p.ExitCode, i)
		}
	}
}

// TestSchedulerStealAndPark: an idle CPU must take queued work from a busy
// sibling rather than sleep through it, and idle CPUs park rather than
// spin.
func TestSchedulerStealAndPark(t *testing.T) {
	k := New()
	s := NewScheduler(k, SchedConfig{CPUs: 2, Quantum: 1000})
	// Submit assigns home CPUs round-robin: the two long tasks land on CPU
	// 0, the trivial one on CPU 1. CPU 1 finishes immediately and the only
	// way the long tasks can overlap is a steal.
	long1 := spawnWith(t, k, countdownSrc(200_000, 1))
	tiny := spawnWith(t, k, countdownSrc(10, 2))
	long2 := spawnWith(t, k, countdownSrc(200_000, 3))
	if err := s.RunAll([]*Process{long1, tiny, long2}, 2_000_000); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	snap := k.Obs.R.Snapshot()
	if snap.Counters["kern.cpu_steals"] == 0 {
		t.Fatalf("no steals: %+v", snap.Counters)
	}
	if snap.Counters["kern.cpu_parks"] == 0 {
		t.Fatalf("no parks: %+v", snap.Counters)
	}
	if got := snap.Counters["kern.cpu_steps"]; got < 600_000 {
		t.Fatalf("kern.cpu_steps = %d, want >= 600000", got)
	}
}

// TestSchedulerDeterministicReplay: the det-mode schedule is a pure
// function of the seed — same seed, same interleaving, bit-identical final
// states; and whatever the seed, a schedule-independent workload converges
// to the same state.
func TestSchedulerDeterministicReplay(t *testing.T) {
	run := func(seed int64) (hashes []uint64, steps []uint64) {
		k := New()
		s := NewScheduler(k, SchedConfig{Det: true, Seed: seed, Quantum: 500})
		defer s.Stop()
		var ps []*Process
		var tasks []*Task
		for i := 0; i < 4; i++ {
			p := spawnWith(t, k, countdownSrc(5_000+i*777, i+1))
			ps = append(ps, p)
			tasks = append(tasks, s.Submit(p, 1_000_000))
		}
		for i, tk := range tasks {
			n, err := tk.Wait()
			if err != nil {
				t.Fatal(err)
			}
			steps = append(steps, n)
			hashes = append(hashes, vm.StateHash(ps[i].CPU))
		}
		return hashes, steps
	}
	h1, s1 := run(42)
	h2, s2 := run(42)
	h3, _ := run(7)
	for i := range h1 {
		if h1[i] != h2[i] || s1[i] != s2[i] {
			t.Fatalf("seed 42 not reproducible: task %d hash %x/%x steps %d/%d", i, h1[i], h2[i], s1[i], s2[i])
		}
		if h1[i] != h3[i] {
			t.Fatalf("schedule-independent workload diverged across seeds: task %d %x vs %x", i, h1[i], h3[i])
		}
	}
}

// spinWorkerSrc is the torture workload: acquire a TAS spin lock in a
// public shared segment, bump the shared counter with PLAIN loads and
// stores (the lock's host-atomic acquire/release is what makes that safe),
// release, repeat iters times.
func spinWorkerSrc(iters int) string {
	return fmt.Sprintf(`
        .text
        li      $v0, 14         # map_shared(path, size)
        la      $a0, path
        li      $a1, 4096
        syscall
        bnez    $v1, fail
        move    $s0, $v0        # lock word at base+0
        addiu   $s1, $v0, 4     # counter at base+4
        li      $s2, %d
again:
        li      $v0, 23         # tas(lock)
        move    $a0, $s0
        syscall
        bnez    $v0, again      # lock was held; spin
        lw      $t0, 0($s1)     # critical section: plain rmw
        addiu   $t0, $t0, 1
        sw      $t0, 0($s1)
        li      $v0, 24         # atomic_store(lock, 0): release
        move    $a0, $s0
        li      $a1, 0
        syscall
        addiu   $s2, $s2, -1
        bnez    $s2, again
        li      $a0, 0
        li      $v0, 1          # exit(0)
        syscall
fail:   li      $a0, 255
        li      $v0, 1
        syscall
        .data
path:   .asciiz "/spinlock"
`, iters)
}

// TestSpinLockTorture: 8 guest CPUs hammer one test-and-set lock guarding
// a shared counter. Every update must survive — the exact final count
// proves no lost updates, and -race proves the guest lock gives the host
// the happens-before edges it needs.
func TestSpinLockTorture(t *testing.T) {
	const workers = 8
	iters := 400
	if testing.Short() {
		iters = 60
	}
	k := New()
	if _, err := k.FS.Create("/spinlock", shmfs.DefaultFileMode, 0); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(k, SchedConfig{CPUs: workers, Quantum: 2000})
	defer s.Stop()
	var ps []*Process
	for i := 0; i < workers; i++ {
		ps = append(ps, spawnWith(t, k, spinWorkerSrc(iters)))
	}
	if err := s.RunAll(ps, 200_000_000); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if p.ExitCode != 0 {
			t.Fatalf("pid %d exit %d", p.PID, p.ExitCode)
		}
	}
	var buf [4]byte
	if _, err := k.FS.ReadAt("/spinlock", 4, buf[:], 0); err != nil {
		t.Fatal(err)
	}
	got := uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])
	if want := uint32(workers * iters); got != want {
		t.Fatalf("shared counter = %d, want %d (lost updates)", got, want)
	}
}
