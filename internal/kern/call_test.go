package kern

import (
	"errors"
	"strings"
	"testing"

	"hemlock/internal/isa"
	"hemlock/internal/layout"
	"hemlock/internal/linker"
	"hemlock/internal/objfile"
)

// callTestImage: main never runs; the test calls the exported functions
// directly on the parked process.
const callTestSrc = `
        .text
        .globl  main
main:   li      $v0, 0
        jr      $ra
        .globl  add2
add2:   addu    $v0, $a0, $a1
        jr      $ra
        .globl  bump
bump:   la      $t0, hits
        lw      $v0, 0($t0)
        addiu   $v0, $v0, 1
        sw      $v0, 0($t0)
        jr      $ra
        .globl  die
die:    li      $v0, 1
        li      $a0, 9
        syscall
        .data
        .globl  hits
hits:   .word   0
`

// buildImageSyms is buildImage plus the placed symbol table, so tests can
// look up exported function addresses.
func buildImageSyms(t *testing.T, src string) *objfile.Image {
	t.Helper()
	o, err := isa.Assemble("prog.s", src)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := linker.Place(o, layout.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	img := pl.Image()
	pending, err := pl.RelocateInternal(&linker.BytesPatcher{Base: layout.TextBase, B: img})
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("test image has unresolved refs: %v", pending)
	}
	dataOff, _ := o.Layout()
	return &objfile.Image{
		Name:     "a.out",
		Entry:    layout.TextBase,
		TextBase: layout.TextBase,
		Text:     img[:dataOff],
		DataBase: layout.TextBase + dataOff,
		Data:     img[dataOff:],
		BssBase:  layout.TextBase + uint32(len(img)),
		BssSize:  pl.Size() - uint32(len(img)),
		Symbols:  pl.Exports(),
	}
}

func callTestProc(t *testing.T) (*Kernel, *Process, func(string) uint32) {
	t.Helper()
	k := New()
	p := k.Spawn(0)
	im := buildImageSyms(t, callTestSrc)
	if err := p.Exec(im); err != nil {
		t.Fatal(err)
	}
	lookup := func(name string) uint32 {
		addr, ok := im.Lookup(name)
		if !ok {
			t.Fatalf("symbol %s not in image", name)
		}
		return addr
	}
	return k, p, lookup
}

func TestCallFunctionReturnsValue(t *testing.T) {
	k, p, lookup := callTestProc(t)
	ret, steps, err := k.CallFunction(p, lookup("add2"), [4]uint32{40, 2}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Fatalf("add2(40,2) = %d", ret)
	}
	if steps == 0 {
		t.Fatal("no steps retired")
	}
}

func TestCallFunctionRepeatedAndStateRestored(t *testing.T) {
	k, p, lookup := callTestProc(t)
	pc, ra := p.CPU.PC, p.CPU.Regs[31]
	for i := 1; i <= 5; i++ {
		ret, _, err := k.CallFunction(p, lookup("bump"), [4]uint32{}, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if ret != uint32(i) {
			t.Fatalf("bump #%d = %d", i, ret)
		}
	}
	if p.CPU.PC != pc || p.CPU.Regs[31] != ra {
		t.Fatalf("PC/$ra not restored: pc=0x%08x ra=0x%08x", p.CPU.PC, p.CPU.Regs[31])
	}
	if p.Exited {
		t.Fatal("parked process exited")
	}
}

func TestCallFunctionCalleeExits(t *testing.T) {
	k, p, lookup := callTestProc(t)
	_, _, err := k.CallFunction(p, lookup("die"), [4]uint32{}, 1000)
	if !errors.Is(err, ErrCallExited) {
		t.Fatalf("err = %v, want ErrCallExited", err)
	}
	if !p.Exited || p.ExitCode != 9 {
		t.Fatalf("exited=%v code=%d", p.Exited, p.ExitCode)
	}
	// A call on the dead process fails cleanly.
	if _, _, err := k.CallFunction(p, lookup("add2"), [4]uint32{}, 1000); !errors.Is(err, ErrExited) {
		t.Fatalf("call on exited process: %v", err)
	}
}

func TestCallFunctionBudgetExceeded(t *testing.T) {
	k, p, _ := callTestProc(t)
	// Call main's address with a budget of 1: the first instruction
	// retires and the step budget trips before the function can return.
	addr := p.CPU.PC
	_, _, err := k.CallFunction(p, addr, [4]uint32{}, 1)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v, want step-budget error", err)
	}
}

func TestCallFunctionChainsExistingBreakHandler(t *testing.T) {
	k, p, lookup := callTestProc(t)
	fired := false
	p.BreakHandler = func(pp *Process) error {
		fired = true
		// Resume past the break (PC already advanced).
		return nil
	}
	// Plant a break at the start of add2: the chained handler must see it
	// and resume; execution continues with the following instructions.
	addr := lookup("add2")
	if err := p.AS.StoreWord(addr, isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	ret, _, err := k.CallFunction(p, addr, [4]uint32{7, 8}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("existing break handler not chained")
	}
	// The overwritten addu never ran; $v0 is whatever the call left (0 from
	// the break-resume path running jr $ra with $v0 unset). The important
	// assertions are the chaining and the clean return.
	_ = ret
}
