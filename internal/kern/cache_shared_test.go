package kern

// Cross-process cache coherence: stores into a shared page by one process
// must be visible to a sibling CPU's instruction cache on its very next
// fetch. This is the ldl scenario — one domain patches shared text that
// another domain is executing.

import (
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/layout"
	"hemlock/internal/mem"
	"hemlock/internal/shmfs"
	"hemlock/internal/vm"
)

func TestSharedPageStoreVisibleToSiblingCPU(t *testing.T) {
	k := New()
	writer := k.Spawn(0)
	runner := k.Spawn(0)

	// Shared RWX page mapped at the same address in both spaces — segment
	// discipline per the paper.
	const shared = layout.SharedBase
	if err := writer.AS.MapAnon(shared, mem.PageSize, addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	writer.AS.ShareRange(runner.AS, shared, shared+mem.PageSize)

	// Runner spins on the shared page, predecoding it into its icache.
	const escape = shared + 0x80
	loop := []uint32{
		isa.EncodeI(isa.OpADDIU, 10, 10, 1), // victim: addiu t2, t2, 1
		isa.EncodeJ(isa.OpJ, shared),        // j victim
	}
	for i, w := range loop {
		if err := writer.AS.StoreWord(shared+uint32(4*i), w); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.AS.StoreWord(escape, isa.EncodeI(isa.OpHALT, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	runner.CPU.PC = shared
	for i := 0; i < 6; i++ {
		if ev, err := runner.CPU.Step(); err != nil || ev != vm.EventStep {
			t.Fatalf("runner warmup step %d: ev=%v err=%v", i, ev, err)
		}
	}

	// Writer executes its own private text: one store that patches the
	// runner's victim instruction in the shared page.
	const wtext = 0x00001000
	if err := writer.AS.MapAnon(wtext, mem.PageSize, addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	if err := writer.AS.StoreWord(wtext, isa.EncodeI(isa.OpSW, 8, 9, 0)); err != nil {
		t.Fatal(err)
	}
	writer.CPU.PC = wtext
	writer.CPU.Regs[8] = isa.EncodeJ(isa.OpJ, escape)
	writer.CPU.Regs[9] = shared
	if ev, err := writer.CPU.Step(); err != nil || ev != vm.EventStep {
		t.Fatalf("writer store: ev=%v err=%v", ev, err)
	}

	// The runner's very next fetch of the victim must see the patch. Its
	// PC is mid-loop; step until it re-reaches the victim, then one more.
	for runner.CPU.PC != shared {
		if ev, err := runner.CPU.Step(); err != nil || ev != vm.EventStep {
			t.Fatalf("runner drain: ev=%v err=%v", ev, err)
		}
	}
	before := runner.CPU.Regs[10]
	if ev, err := runner.CPU.Step(); err != nil || ev != vm.EventStep {
		t.Fatalf("runner post-patch step: ev=%v err=%v", ev, err)
	}
	if runner.CPU.PC != escape {
		t.Fatalf("sibling executed stale predecode: pc = 0x%08x, want 0x%08x", runner.CPU.PC, escape)
	}
	if runner.CPU.Regs[10] != before {
		t.Fatal("victim addiu retired after the patch landed")
	}
	if st := runner.CPU.CacheStats(); st.ICInvals == 0 {
		t.Fatal("sibling icache invalidation not recorded")
	}
}

// TestSharedPageStoreInvalidatesSiblingBlocks is the batched-execution
// variant: the runner's loop is hot in translated, chained blocks when a
// sibling process stores into the shared text frame. The frame-version
// check on the runner's next block entry must force a rebuild, so the
// patched word executes on the very next transfer into it.
func TestSharedPageStoreInvalidatesSiblingBlocks(t *testing.T) {
	k := New()
	writer := k.Spawn(0)
	runner := k.Spawn(0)
	if !runner.CPU.BlockEngineOn() {
		t.Skip("block engine disabled via HEMLOCK_BLOCK_ENGINE")
	}

	const shared = layout.SharedBase
	if err := writer.AS.MapAnon(shared, mem.PageSize, addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	writer.AS.ShareRange(runner.AS, shared, shared+mem.PageSize)

	// Victim loop off the page base so the rebuild registers as a stale
	// same-address replacement in the direct-mapped block cache.
	const victim = shared + 0x100
	const escape = shared + 0x200
	loop := []uint32{
		isa.EncodeI(isa.OpADDIU, 10, 10, 1), // victim: addiu t2, t2, 1
		isa.EncodeJ(isa.OpJ, victim),        // j victim
	}
	for i, w := range loop {
		if err := writer.AS.StoreWord(victim+uint32(4*i), w); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.AS.StoreWord(escape, isa.EncodeI(isa.OpHALT, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	runner.CPU.PC = victim
	if ev, err := runner.CPU.RunBatch(20); err != nil || ev != vm.EventStep {
		t.Fatalf("runner warmup: ev=%v err=%v", ev, err)
	}
	if runner.CPU.CacheStats().BlockHits == 0 {
		t.Fatal("runner loop never got hot in the block cache")
	}

	// The writer's store goes through its own CPU, in its own space, into
	// the shared frame.
	const wtext = 0x00001000
	if err := writer.AS.MapAnon(wtext, mem.PageSize, addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	if err := writer.AS.StoreWord(wtext, isa.EncodeI(isa.OpSW, 8, 9, 0)); err != nil {
		t.Fatal(err)
	}
	writer.CPU.PC = wtext
	writer.CPU.Regs[8] = isa.EncodeJ(isa.OpJ, escape)
	writer.CPU.Regs[9] = victim
	if ev, err := writer.CPU.RunBatch(1); err != nil || ev != vm.EventStep {
		t.Fatalf("writer store: ev=%v err=%v", ev, err)
	}

	before := runner.CPU.Regs[10]
	ev, err := runner.CPU.RunBatch(1000)
	if err != nil || ev != vm.EventHalt {
		t.Fatalf("runner post-patch: ev=%v err=%v pc=0x%08x, want halt", ev, err, runner.CPU.PC)
	}
	if runner.CPU.PC != escape {
		t.Fatalf("sibling executed stale blocks: pc = 0x%08x, want 0x%08x", runner.CPU.PC, escape)
	}
	// The runner's PC sat mid-loop when the batch ended, so at most the
	// tail of one iteration retires before the patched victim is refetched.
	if runner.CPU.Regs[10] > before+1 {
		t.Fatalf("victim retired %d more times after the patch", runner.CPU.Regs[10]-before)
	}
	if st := runner.CPU.CacheStats(); st.BlockInvals == 0 {
		t.Fatal("sibling block invalidation not recorded")
	}
}

// TestConcurrentSMCPatchObservedBySibling is the true-SMP variant of the
// tests above: the writer and the runner execute at the same time on two
// scheduler CPUs. The runner spins hot in chained blocks over a shared
// text page; the writer's store instruction patches the loop into a jump
// to a HALT. If the cross-CPU invalidation protocol (atomic store-version
// bump before an atomic word store) ever let the runner keep executing its
// stale translation, it would spin its entire budget and fail the run.
func TestConcurrentSMCPatchObservedBySibling(t *testing.T) {
	k := New()
	writer := k.Spawn(0)
	runner := k.Spawn(0)

	const shared = layout.SharedBase
	if err := writer.AS.MapAnon(shared, mem.PageSize, addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	writer.AS.ShareRange(runner.AS, shared, shared+mem.PageSize)

	const victim = shared + 0x100
	const escape = shared + 0x200
	loop := []uint32{
		isa.EncodeI(isa.OpADDIU, 10, 10, 1), // victim: addiu t2, t2, 1
		isa.EncodeJ(isa.OpJ, victim),        // j victim
	}
	for i, w := range loop {
		if err := writer.AS.StoreWord(victim+uint32(4*i), w); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.AS.StoreWord(escape, isa.EncodeI(isa.OpHALT, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	runner.CPU.PC = victim
	// Warm the runner's translations single-threaded so the concurrent
	// phase starts with the stale-block hazard in place.
	if ev, err := runner.CPU.RunBatch(20); err != nil || ev != vm.EventStep {
		t.Fatalf("runner warmup: ev=%v err=%v", ev, err)
	}

	// Writer program: one store that patches the victim word, then HALT.
	const wtext = 0x00001000
	if err := writer.AS.MapAnon(wtext, mem.PageSize, addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	if err := writer.AS.StoreWord(wtext, isa.EncodeI(isa.OpSW, 8, 9, 0)); err != nil {
		t.Fatal(err)
	}
	if err := writer.AS.StoreWord(wtext+4, isa.EncodeI(isa.OpHALT, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	writer.CPU.PC = wtext
	writer.CPU.Regs[8] = isa.EncodeJ(isa.OpJ, escape)
	writer.CPU.Regs[9] = victim

	s := NewScheduler(k, SchedConfig{CPUs: 2, Quantum: 500})
	defer s.Stop()
	// 50M steps is ~forever for a 3-instruction loop: the runner only
	// survives the budget by observing the patch.
	if err := s.RunAll([]*Process{runner, writer}, 50_000_000); err != nil {
		t.Fatal(err)
	}
	if !runner.Exited || runner.ExitCode != 0 {
		t.Fatalf("runner exited=%v code=%d", runner.Exited, runner.ExitCode)
	}
}

// TestConcurrentFilePatchObservedBySibling patches through the shared file
// system — the exact mechanism ldl's filePatcher uses for PLT slots and
// text words in public modules — while a scheduled guest CPU is executing
// out of the very frames being patched. FS.StoreWordAt's host-atomic frame
// store must be seen by the running CPU on its next block entry.
func TestConcurrentFilePatchObservedBySibling(t *testing.T) {
	k := New()
	if _, err := k.FS.Create("/pltmod", shmfs.DefaultFileMode, 0); err != nil {
		t.Fatal(err)
	}
	runner := k.Spawn(0)
	st, err := k.MapSharedFile(runner, "/pltmod", mem.PageSize, addrspace.ProtRWX)
	if err != nil {
		t.Fatal(err)
	}
	victim := st.Addr + 0x40
	escape := st.Addr + 0x80
	words := map[uint32]uint32{
		victim:     isa.EncodeI(isa.OpADDIU, 10, 10, 1),
		victim + 4: isa.EncodeJ(isa.OpJ, victim),
		escape:     isa.EncodeI(isa.OpHALT, 0, 0, 0),
	}
	for addr, w := range words {
		if err := k.FS.StoreWordAt("/pltmod", addr-st.Addr, w, 0); err != nil {
			t.Fatal(err)
		}
	}
	runner.CPU.PC = victim

	s := NewScheduler(k, SchedConfig{CPUs: 2, Quantum: 500})
	defer s.Stop()
	task := s.Submit(runner, 50_000_000)
	// Concurrent with the running CPU: patch the loop's jump into a jump
	// to the HALT, the way a sibling CPU's linker patches a PLT slot.
	if err := k.FS.StoreWordAt("/pltmod", victim+4-st.Addr, isa.EncodeJ(isa.OpJ, escape), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if !runner.Exited || runner.ExitCode != 0 {
		t.Fatalf("runner exited=%v code=%d", runner.Exited, runner.ExitCode)
	}
}
