package objfile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary encoding of HEMO objects and HEMX images. Big-endian throughout,
// matching the simulated machine. Strings are u16 length + bytes; byte
// blobs are u32 length + bytes.

const (
	objMagic   = "HEMO"
	imgMagic   = "HEMX"
	objVersion = 1
)

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) str(s string) {
	if w.err != nil {
		return
	}
	if len(s) > 0xFFFF {
		w.err = fmt.Errorf("objfile: string too long (%d bytes)", len(s))
		return
	}
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], uint16(len(s)))
	w.w.Write(b[:])
	_, w.err = w.w.WriteString(s)
}

func (w *writer) u8(v uint8) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(v)
}

func (w *writer) u32(v uint32) {
	if w.err != nil {
		return
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	_, w.err = w.w.Write(b[:])
}

func (w *writer) i32(v int32) { w.u32(uint32(v)) }

func (w *writer) blob(b []byte) {
	w.u32(uint32(len(b)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

func (w *writer) strs(ss []string) {
	w.u32(uint32(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) str() string {
	if r.err != nil {
		return ""
	}
	var b [2]byte
	if _, r.err = io.ReadFull(r.r, b[:]); r.err != nil {
		return ""
	}
	n := binary.BigEndian.Uint16(b[:])
	buf := make([]byte, n)
	if _, r.err = io.ReadFull(r.r, buf); r.err != nil {
		return ""
	}
	return string(buf)
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	var v byte
	v, r.err = r.r.ReadByte()
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var b [4]byte
	if _, r.err = io.ReadFull(r.r, b[:]); r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b[:])
}

func (r *reader) i32() int32 { return int32(r.u32()) }

const maxBlob = 64 << 20 // sanity cap on decoded blob sizes

func (r *reader) blob() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n > maxBlob {
		r.err = fmt.Errorf("objfile: blob of %d bytes exceeds sanity limit", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	buf := make([]byte, n)
	if _, r.err = io.ReadFull(r.r, buf); r.err != nil {
		return nil
	}
	return buf
}

func (r *reader) strs() []string {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n > 1<<20 {
		r.err = fmt.Errorf("objfile: string list of %d entries exceeds sanity limit", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, r.str())
	}
	return out
}

// Encode writes the object to w in HEMO format.
func (o *Object) Encode(out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.w.WriteString(objMagic)
	w.u32(objVersion)
	w.str(o.Name)
	gp := uint8(0)
	if o.UsesGP {
		gp = 1
	}
	w.u8(gp)
	w.blob(o.Text)
	w.blob(o.Data)
	w.u32(o.BssSize)
	w.u32(uint32(len(o.Symbols)))
	for i := range o.Symbols {
		s := &o.Symbols[i]
		w.str(s.Name)
		w.u8(uint8(s.Section))
		w.u32(s.Value)
		g := uint8(0)
		if s.Global {
			g = 1
		}
		w.u8(g)
		w.u32(s.Size)
	}
	w.u32(uint32(len(o.Relocs)))
	for _, r := range o.Relocs {
		w.u8(uint8(r.Section))
		w.u32(r.Offset)
		w.u32(uint32(r.Sym))
		w.u8(uint8(r.Type))
		w.i32(r.Addend)
	}
	w.u32(uint32(len(o.Deps)))
	for _, d := range o.Deps {
		w.str(d.Name)
		w.u8(uint8(d.Class))
	}
	w.strs(o.SearchPath)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Bytes returns the HEMO encoding of the object.
func (o *Object) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := o.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads a HEMO object from in.
func Decode(in io.Reader) (*Object, error) {
	r := &reader{r: bufio.NewReader(in)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r.r, magic); err != nil {
		return nil, fmt.Errorf("objfile: reading magic: %w", err)
	}
	if string(magic) != objMagic {
		return nil, fmt.Errorf("objfile: bad magic %q (not a HEMO object)", magic)
	}
	if v := r.u32(); r.err == nil && v != objVersion {
		return nil, fmt.Errorf("objfile: unsupported version %d", v)
	}
	o := &Object{}
	o.Name = r.str()
	o.UsesGP = r.u8() != 0
	o.Text = r.blob()
	o.Data = r.blob()
	o.BssSize = r.u32()
	nsym := r.u32()
	if r.err == nil && nsym > 1<<20 {
		return nil, fmt.Errorf("objfile: %d symbols exceeds sanity limit", nsym)
	}
	for i := uint32(0); i < nsym && r.err == nil; i++ {
		var s Symbol
		s.Name = r.str()
		s.Section = Section(r.u8())
		s.Value = r.u32()
		s.Global = r.u8() != 0
		s.Size = r.u32()
		o.Symbols = append(o.Symbols, s)
	}
	nrel := r.u32()
	if r.err == nil && nrel > 1<<20 {
		return nil, fmt.Errorf("objfile: %d relocs exceeds sanity limit", nrel)
	}
	for i := uint32(0); i < nrel && r.err == nil; i++ {
		var rel Reloc
		rel.Section = Section(r.u8())
		rel.Offset = r.u32()
		rel.Sym = int(r.u32())
		rel.Type = RelType(r.u8())
		rel.Addend = r.i32()
		o.Relocs = append(o.Relocs, rel)
	}
	ndep := r.u32()
	if r.err == nil && ndep > 1<<20 {
		return nil, fmt.Errorf("objfile: %d deps exceeds sanity limit", ndep)
	}
	for i := uint32(0); i < ndep && r.err == nil; i++ {
		var d ModuleRef
		d.Name = r.str()
		d.Class = Class(r.u8())
		o.Deps = append(o.Deps, d)
	}
	o.SearchPath = r.strs()
	if r.err != nil {
		return nil, fmt.Errorf("objfile: decoding %q: %w", o.Name, r.err)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// DecodeBytes decodes a HEMO object from a byte slice.
func DecodeBytes(b []byte) (*Object, error) { return Decode(bytes.NewReader(b)) }

// EncodeImage writes the load image to out in HEMX format.
func (im *Image) EncodeImage(out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.w.WriteString(imgMagic)
	w.u32(objVersion)
	w.str(im.Name)
	w.u32(im.Entry)
	w.u32(im.TextBase)
	w.blob(im.Text)
	w.u32(im.DataBase)
	w.blob(im.Data)
	w.u32(im.BssBase)
	w.u32(im.BssSize)
	w.u32(im.TrampBase)
	w.u32(im.TrampSize)
	w.u32(uint32(len(im.Symbols)))
	for _, s := range im.Symbols {
		w.str(s.Name)
		w.u32(s.Addr)
		w.u32(s.Size)
	}
	w.u32(uint32(len(im.Relocs)))
	for _, r := range im.Relocs {
		w.u32(r.Addr)
		w.str(r.Name)
		w.u8(uint8(r.Type))
		w.i32(r.Addend)
	}
	w.u32(uint32(len(im.Dyn.DynModules)))
	for _, d := range im.Dyn.DynModules {
		w.str(d.Name)
		w.u8(uint8(d.Class))
	}
	w.u32(uint32(len(im.Dyn.StaticPublic)))
	for _, sp := range im.Dyn.StaticPublic {
		w.str(sp.Name)
		w.str(sp.Path)
		w.str(sp.Template)
		w.u32(sp.Addr)
	}
	w.str(im.Dyn.LinkDir)
	w.strs(im.Dyn.CmdPath)
	w.strs(im.Dyn.EnvPath)
	w.strs(im.Dyn.DefaultPath)
	w.u32(uint32(len(im.PLT)))
	for _, s := range im.PLT {
		w.str(s.Name)
		w.u32(s.Addr)
		w.u32(s.Size)
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// ImageBytes returns the HEMX encoding of the image.
func (im *Image) ImageBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := im.EncodeImage(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeImage reads a HEMX load image from in.
func DecodeImage(in io.Reader) (*Image, error) {
	r := &reader{r: bufio.NewReader(in)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r.r, magic); err != nil {
		return nil, fmt.Errorf("objfile: reading image magic: %w", err)
	}
	if string(magic) != imgMagic {
		return nil, fmt.Errorf("objfile: bad magic %q (not a HEMX image)", magic)
	}
	if v := r.u32(); r.err == nil && v != objVersion {
		return nil, fmt.Errorf("objfile: unsupported image version %d", v)
	}
	im := &Image{}
	im.Name = r.str()
	im.Entry = r.u32()
	im.TextBase = r.u32()
	im.Text = r.blob()
	im.DataBase = r.u32()
	im.Data = r.blob()
	im.BssBase = r.u32()
	im.BssSize = r.u32()
	im.TrampBase = r.u32()
	im.TrampSize = r.u32()
	nsym := r.u32()
	for i := uint32(0); i < nsym && r.err == nil; i++ {
		var s ImageSym
		s.Name = r.str()
		s.Addr = r.u32()
		s.Size = r.u32()
		im.Symbols = append(im.Symbols, s)
	}
	nrel := r.u32()
	for i := uint32(0); i < nrel && r.err == nil; i++ {
		var rel ImageReloc
		rel.Addr = r.u32()
		rel.Name = r.str()
		rel.Type = RelType(r.u8())
		rel.Addend = r.i32()
		im.Relocs = append(im.Relocs, rel)
	}
	ndyn := r.u32()
	for i := uint32(0); i < ndyn && r.err == nil; i++ {
		var d ModuleRef
		d.Name = r.str()
		d.Class = Class(r.u8())
		im.Dyn.DynModules = append(im.Dyn.DynModules, d)
	}
	nsp := r.u32()
	for i := uint32(0); i < nsp && r.err == nil; i++ {
		var sp StaticPublicRef
		sp.Name = r.str()
		sp.Path = r.str()
		sp.Template = r.str()
		sp.Addr = r.u32()
		im.Dyn.StaticPublic = append(im.Dyn.StaticPublic, sp)
	}
	im.Dyn.LinkDir = r.str()
	im.Dyn.CmdPath = r.strs()
	im.Dyn.EnvPath = r.strs()
	im.Dyn.DefaultPath = r.strs()
	nplt := r.u32()
	for i := uint32(0); i < nplt && r.err == nil; i++ {
		var s ImageSym
		s.Name = r.str()
		s.Addr = r.u32()
		s.Size = r.u32()
		im.PLT = append(im.PLT, s)
	}
	if r.err != nil {
		return nil, fmt.Errorf("objfile: decoding image %q: %w", im.Name, r.err)
	}
	return im, nil
}

// DecodeImageBytes decodes a HEMX image from a byte slice.
func DecodeImageBytes(b []byte) (*Image, error) { return DecodeImage(bytes.NewReader(b)) }
