package objfile

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleObject(t *testing.T) *Object {
	t.Helper()
	o, err := NewBuilder("sample.o").
		Word("counter", 42, true).
		String("banner", "hello", true).
		Bss("scratch", 128, false).
		Pointer("head", "counter", 0, true).
		Extern("external_fn").
		Dep("other.o", DynamicPublic).
		SearchPath("/lib", "/usr/lib").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestClassPredicates(t *testing.T) {
	// Table 1: classes differ in link time and per-process instantiation.
	cases := []struct {
		c              Class
		static, public bool
		str            string
	}{
		{StaticPrivate, true, false, "static private"},
		{DynamicPrivate, false, false, "dynamic private"},
		{StaticPublic, true, true, "static public"},
		{DynamicPublic, false, true, "dynamic public"},
	}
	for _, c := range cases {
		if c.c.Static() != c.static || c.c.Public() != c.public || c.c.String() != c.str {
			t.Errorf("%v: static=%v public=%v str=%q", c.c, c.c.Static(), c.c.Public(), c.c.String())
		}
	}
}

func TestBuilderSymbols(t *testing.T) {
	o := sampleObject(t)
	if got := o.Exports(); !reflect.DeepEqual(got, []string{"banner", "counter", "head"}) {
		t.Fatalf("exports = %v", got)
	}
	if got := o.Undefined(); !reflect.DeepEqual(got, []string{"external_fn"}) {
		t.Fatalf("undefined = %v", got)
	}
	s, ok := o.Lookup("counter")
	if !ok || s.Section != SecData || s.Size != 4 {
		t.Fatalf("counter symbol: %+v", s)
	}
	if v := binary.BigEndian.Uint32(o.Data[s.Value:]); v != 42 {
		t.Fatalf("counter initial value = %d", v)
	}
}

func TestBuilderPointerReloc(t *testing.T) {
	o := sampleObject(t)
	var found bool
	for _, r := range o.Relocs {
		if o.Symbols[r.Sym].Name == "counter" && r.Type == RelWord32 && r.Section == SecData {
			found = true
		}
	}
	if !found {
		t.Fatal("pointer relocation missing")
	}
}

func TestBuilderDuplicateDefinition(t *testing.T) {
	_, err := NewBuilder("dup.o").Word("x", 1, true).Word("x", 2, true).Build()
	if err == nil {
		t.Fatal("duplicate definition accepted")
	}
}

func TestBuilderAlignment(t *testing.T) {
	o, err := NewBuilder("align.o").
		Bytes("odd", []byte{1, 2, 3}, false).
		Word("w", 7, true).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s, _ := o.Lookup("w")
	if s.Value%4 != 0 {
		t.Fatalf("word symbol at unaligned offset %d", s.Value)
	}
}

func TestLayout(t *testing.T) {
	o := &Object{Name: "l.o", Text: make([]byte, 8), Data: make([]byte, 6), BssSize: 10}
	dataOff, bssOff := o.Layout()
	if dataOff != 8 || bssOff != 16 {
		t.Fatalf("layout = %d,%d, want 8,16", dataOff, bssOff)
	}
	if o.TotalSize() != 8+8+12 {
		t.Fatalf("total = %d", o.TotalSize())
	}
}

func TestValidateCatchesBadRelocs(t *testing.T) {
	o := &Object{
		Name:    "bad.o",
		Data:    make([]byte, 8),
		Symbols: []Symbol{{Name: "x", Section: SecData}},
		Relocs:  []Reloc{{Section: SecData, Offset: 6, Sym: 0, Type: RelWord32}},
	}
	if err := o.Validate(); err == nil {
		t.Fatal("out-of-bounds reloc accepted")
	}
	o.Relocs[0].Offset = 2
	if err := o.Validate(); err == nil {
		t.Fatal("unaligned reloc accepted")
	}
	o.Relocs[0] = Reloc{Section: SecData, Offset: 0, Sym: 5, Type: RelWord32}
	if err := o.Validate(); err == nil {
		t.Fatal("bad symbol index accepted")
	}
}

func TestValidateUnalignedText(t *testing.T) {
	o := &Object{Name: "t.o", Text: make([]byte, 6)}
	if err := o.Validate(); err == nil {
		t.Fatal("unaligned text accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	o := sampleObject(t)
	b, err := o.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, o)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBytes([]byte("GARBAGEGARBAGE")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeBytes(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated valid prefix.
	o := sampleObject(t)
	b, _ := o.Bytes()
	if _, err := DecodeBytes(b[:len(b)/2]); err == nil {
		t.Fatal("truncated object accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	o := sampleObject(t)
	c := o.Clone()
	c.Data[0] = 0xFF
	c.Symbols[0].Name = "mutated"
	if o.Data[0] == 0xFF || o.Symbols[0].Name == "mutated" {
		t.Fatal("clone aliases original")
	}
}

func TestImageRoundTrip(t *testing.T) {
	im := &Image{
		Name:     "a.out",
		Entry:    0x400000,
		TextBase: 0x400000,
		Text:     []byte{1, 2, 3, 4},
		DataBase: 0x10000000,
		Data:     []byte{5, 6, 7, 8},
		BssBase:  0x10001000,
		BssSize:  256,
		Symbols:  []ImageSym{{Name: "main", Addr: 0x400000, Size: 4}},
		Relocs:   []ImageReloc{{Addr: 0x10000000, Name: "shared_var", Type: RelWord32, Addend: 8}},
		Dyn: DynInfo{
			DynModules:   []ModuleRef{{Name: "shared1.o", Class: DynamicPublic}},
			StaticPublic: []StaticPublicRef{{Name: "tbl.o", Path: "/lib/tbl", Template: "/lib/tbl.o", Addr: 0x30100000}},
			LinkDir:      "/home/user",
			CmdPath:      []string{"/opt/lib"},
			EnvPath:      []string{"/env/lib"},
			DefaultPath:  []string{"/lib"},
		},
	}
	b, err := im.ImageBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImageBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(im, got) {
		t.Fatalf("image round trip mismatch:\n got %+v\nwant %+v", got, im)
	}
	if addr, ok := got.Lookup("main"); !ok || addr != 0x400000 {
		t.Fatalf("Lookup(main) = %x, %v", addr, ok)
	}
	if u := got.UndefinedRelocs(); len(u) != 1 || u[0] != "shared_var" {
		t.Fatalf("UndefinedRelocs = %v", u)
	}
}

func TestImageDecodeRejectsObjMagic(t *testing.T) {
	o := sampleObject(t)
	b, _ := o.Bytes()
	if _, err := DecodeImageBytes(b); err == nil {
		t.Fatal("HEMO accepted as HEMX")
	}
}

// Property: any builder-produced module with random words and strings
// round-trips through the binary encoding.
func TestRoundTripProperty(t *testing.T) {
	f := func(vals []uint32, s string, bss uint16) bool {
		if len(s) > 1000 {
			s = s[:1000]
		}
		b := NewBuilder("prop.o").Words("arr", vals, true).Bss("z", uint32(bss), false)
		if s != "" {
			b.String("msg", s, false)
		}
		o, err := b.Build()
		if err != nil {
			return false
		}
		enc, err := o.Bytes()
		if err != nil {
			return false
		}
		got, err := DecodeBytes(enc)
		return err == nil && reflect.DeepEqual(o, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSectionStrings(t *testing.T) {
	for sec, want := range map[Section]string{SecUndef: "undef", SecText: "text", SecData: "data", SecBss: "bss", SecAbs: "abs"} {
		if sec.String() != want {
			t.Errorf("%d.String() = %q", sec, sec.String())
		}
	}
	for rt, want := range map[RelType]string{RelWord32: "WORD32", RelHi16: "HI16", RelLo16: "LO16", RelJump26: "JUMP26", RelBranch16: "BRANCH16", RelGPRel16: "GPREL16"} {
		if rt.String() != want {
			t.Errorf("reloc %d.String() = %q, want %q", rt, rt.String(), want)
		}
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	o := sampleObject(t)
	var b1, b2 bytes.Buffer
	o.Encode(&b1)
	o.Encode(&b2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("encoding not deterministic")
	}
}
