package objfile

import (
	"encoding/binary"
	"fmt"
)

// Builder constructs HEMO objects programmatically. It is the moral
// equivalent of the compiler in Figure 1: examples use it to produce the
// template .o files in which shared variables are defined, while the
// assembler (internal/isa) produces code-bearing templates from source.
type Builder struct {
	o    *Object
	errs []error
}

// NewBuilder returns a builder for a module with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{o: &Object{Name: name}}
}

// SetUsesGP marks the module as compiled with the global-pointer register
// enabled (which ldl must reject for shared linking).
func (b *Builder) SetUsesGP(v bool) *Builder {
	b.o.UsesGP = v
	return b
}

func (b *Builder) errf(format string, args ...interface{}) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// symIndex returns the index of name, creating an undefined global
// reference if it is not yet in the table.
func (b *Builder) symIndex(name string) int {
	if i := b.o.SymbolIndex(name); i >= 0 {
		return i
	}
	b.o.Symbols = append(b.o.Symbols, Symbol{Name: name, Section: SecUndef, Global: true})
	return len(b.o.Symbols) - 1
}

func (b *Builder) define(name string, sec Section, value, size uint32, global bool) {
	if i := b.o.SymbolIndex(name); i >= 0 {
		s := &b.o.Symbols[i]
		if s.Defined() {
			b.errf("objfile: duplicate definition of %q in %s", name, b.o.Name)
			return
		}
		s.Section, s.Value, s.Size, s.Global = sec, value, size, global
		return
	}
	b.o.Symbols = append(b.o.Symbols, Symbol{Name: name, Section: sec, Value: value, Size: size, Global: global})
}

// Extern declares an undefined external reference.
func (b *Builder) Extern(name string) *Builder {
	b.symIndex(name)
	return b
}

// Word defines a 4-byte initialised data object.
func (b *Builder) Word(name string, val uint32, global bool) *Builder {
	b.padData(4)
	off := uint32(len(b.o.Data))
	var w [4]byte
	binary.BigEndian.PutUint32(w[:], val)
	b.o.Data = append(b.o.Data, w[:]...)
	b.define(name, SecData, off, 4, global)
	return b
}

// Words defines a named array of 4-byte words.
func (b *Builder) Words(name string, vals []uint32, global bool) *Builder {
	b.padData(4)
	off := uint32(len(b.o.Data))
	for _, v := range vals {
		var w [4]byte
		binary.BigEndian.PutUint32(w[:], v)
		b.o.Data = append(b.o.Data, w[:]...)
	}
	b.define(name, SecData, off, uint32(4*len(vals)), global)
	return b
}

// Bytes defines an initialised byte-array data object (padded to a word).
func (b *Builder) Bytes(name string, data []byte, global bool) *Builder {
	b.padData(4)
	off := uint32(len(b.o.Data))
	b.o.Data = append(b.o.Data, data...)
	b.define(name, SecData, off, uint32(len(data)), global)
	return b
}

// String defines a NUL-terminated string data object.
func (b *Builder) String(name, s string, global bool) *Builder {
	return b.Bytes(name, append([]byte(s), 0), global)
}

// Bss defines a zero-initialised object of the given size.
func (b *Builder) Bss(name string, size uint32, global bool) *Builder {
	b.o.BssSize = (b.o.BssSize + 3) &^ 3
	off := b.o.BssSize
	b.o.BssSize += size
	b.define(name, SecBss, off, size, global)
	return b
}

// Pointer defines a 4-byte data object holding the address of target (+
// addend): an absolute internal or cross-module pointer, patched by the
// linker via a WORD32 relocation. This is the paper's "files with internal
// pointers" mechanism.
func (b *Builder) Pointer(name, target string, addend int32, global bool) *Builder {
	b.padData(4)
	off := uint32(len(b.o.Data))
	b.o.Data = append(b.o.Data, 0, 0, 0, 0)
	b.define(name, SecData, off, 4, global)
	b.o.Relocs = append(b.o.Relocs, Reloc{Section: SecData, Offset: off, Sym: b.symIndex(target), Type: RelWord32, Addend: addend})
	return b
}

// PointerAt patches an existing 4-byte data slot at off to hold the address
// of target (+ addend).
func (b *Builder) PointerAt(off uint32, target string, addend int32) *Builder {
	if off+4 > uint32(len(b.o.Data)) || off%4 != 0 {
		b.errf("objfile: PointerAt offset 0x%x invalid in %s", off, b.o.Name)
		return b
	}
	b.o.Relocs = append(b.o.Relocs, Reloc{Section: SecData, Offset: off, Sym: b.symIndex(target), Type: RelWord32, Addend: addend})
	return b
}

// RawData appends raw bytes to the data section without a symbol and
// returns their offset.
func (b *Builder) RawData(data []byte) uint32 {
	b.padData(4)
	off := uint32(len(b.o.Data))
	b.o.Data = append(b.o.Data, data...)
	return off
}

// DataLabel defines a symbol at the current end of the data section.
func (b *Builder) DataLabel(name string, global bool) *Builder {
	b.padData(4)
	b.define(name, SecData, uint32(len(b.o.Data)), 0, global)
	return b
}

// Text appends instruction words with a label at their start.
func (b *Builder) Text(label string, words []uint32, global bool) *Builder {
	off := uint32(len(b.o.Text))
	for _, w := range words {
		var enc [4]byte
		binary.BigEndian.PutUint32(enc[:], w)
		b.o.Text = append(b.o.Text, enc[:]...)
	}
	b.define(label, SecText, off, uint32(4*len(words)), global)
	return b
}

// TextReloc records a relocation against the text section.
func (b *Builder) TextReloc(off uint32, target string, typ RelType, addend int32) *Builder {
	b.o.Relocs = append(b.o.Relocs, Reloc{Section: SecText, Offset: off, Sym: b.symIndex(target), Type: typ, Addend: addend})
	return b
}

// Dep records a module dependency with its sharing class.
func (b *Builder) Dep(name string, class Class) *Builder {
	b.o.Deps = append(b.o.Deps, ModuleRef{Name: name, Class: class})
	return b
}

// SearchPath sets the module's own search path (scope information).
func (b *Builder) SearchPath(dirs ...string) *Builder {
	b.o.SearchPath = append(b.o.SearchPath, dirs...)
	return b
}

func (b *Builder) padData(align uint32) {
	for uint32(len(b.o.Data))%align != 0 {
		b.o.Data = append(b.o.Data, 0)
	}
}

// Build validates and returns the object. The builder must not be reused.
func (b *Builder) Build() (*Object, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := b.o.Validate(); err != nil {
		return nil, err
	}
	return b.o, nil
}

// MustBuild is Build for tests and examples with static inputs.
func (b *Builder) MustBuild() *Object {
	o, err := b.Build()
	if err != nil {
		panic(err)
	}
	return o
}
