// Package objfile defines the HEMO object-module format, Hemlock's
// equivalent of the Unix .o file.
//
// The paper's central move is to make the unit of sharing — the module —
// correspond to an object file, "the lowest common denominator for language
// implementations". A template .o contains text, initialised data, bss
// size, a symbol table, relocations, and (when pre-processed by lds with
// the retain-relocation option) a module list and search path used by
// scoped linking. Public modules are created from templates and internally
// relocated to a globally-agreed virtual address; private modules are
// instantiated per process.
//
// The package also defines the load-image format (the a.out that lds
// produces), which retains relocation information explicitly because —
// like IRIX ld — a finished executable normally wouldn't keep it, and ldl
// needs it to resolve undefined references in the statically-linked portion
// of the program from symbols found at run time.
package objfile

import (
	"fmt"
	"sort"
)

// Class is a sharing class, assigned module-by-module in the arguments to
// lds (Table 1 of the paper).
type Class uint8

// The four sharing classes.
const (
	StaticPrivate  Class = iota // linked at static link time, new instance per process, private addresses
	DynamicPrivate              // linked at run time, new instance per process, private addresses
	StaticPublic                // linked at static link time, one persistent instance, public address
	DynamicPublic               // linked at run time, one persistent instance, public address
)

func (c Class) String() string {
	switch c {
	case StaticPrivate:
		return "static private"
	case DynamicPrivate:
		return "dynamic private"
	case StaticPublic:
		return "static public"
	case DynamicPublic:
		return "dynamic public"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Static reports whether the class is linked at static link time.
func (c Class) Static() bool { return c == StaticPrivate || c == StaticPublic }

// Public reports whether the class names a persistent module at a public
// address (no per-process instance).
func (c Class) Public() bool { return c == StaticPublic || c == DynamicPublic }

// Section identifies which part of a module a symbol or relocation lives in.
type Section uint8

// Sections.
const (
	SecUndef Section = iota // undefined external reference
	SecText                 // machine code
	SecData                 // initialised data
	SecBss                  // zero-initialised data (size only)
	SecAbs                  // absolute value, not relocated
)

func (s Section) String() string {
	switch s {
	case SecUndef:
		return "undef"
	case SecText:
		return "text"
	case SecData:
		return "data"
	case SecBss:
		return "bss"
	case SecAbs:
		return "abs"
	}
	return fmt.Sprintf("section(%d)", uint8(s))
}

// Symbol is one entry in a module's symbol table. For defined symbols Value
// is the offset within Section (or the absolute value for SecAbs); for
// undefined symbols it is zero.
type Symbol struct {
	Name    string
	Section Section
	Value   uint32
	Global  bool // visible to other modules
	Size    uint32
}

// Defined reports whether the symbol has a definition in this module.
func (s *Symbol) Defined() bool { return s.Section != SecUndef }

// RelType is a relocation kind, modelled on the R3000 relocations the
// IRIX linker wrangles.
type RelType uint8

// Relocation kinds.
const (
	RelWord32   RelType = iota // 32-bit absolute address in data or text
	RelHi16                    // high 16 bits of address (LUI), carry-adjusted
	RelLo16                    // low 16 bits of address (ORI/LW/SW immediate)
	RelJump26                  // 26-bit word-address field of J/JAL; target must share the top 4 address bits
	RelBranch16                // PC-relative signed 16-bit word offset (BEQ/BNE)
	RelGPRel16                 // 16-bit gp-relative offset; incompatible with the sparse shared region
)

func (r RelType) String() string {
	switch r {
	case RelWord32:
		return "WORD32"
	case RelHi16:
		return "HI16"
	case RelLo16:
		return "LO16"
	case RelJump26:
		return "JUMP26"
	case RelBranch16:
		return "BRANCH16"
	case RelGPRel16:
		return "GPREL16"
	}
	return fmt.Sprintf("rel(%d)", uint8(r))
}

// Reloc is one relocation record: patch the word at Offset within Section
// using the address of symbol Sym plus Addend.
type Reloc struct {
	Section Section // SecText or SecData
	Offset  uint32
	Sym     int // index into the symbol table
	Type    RelType
	Addend  int32
}

// ModuleRef names a module dependency together with the sharing class the
// referencing module wants for it. Dependencies drive ldl's recursive,
// scoped inclusion (Figure 2).
type ModuleRef struct {
	Name  string
	Class Class
}

// Object is a HEMO object module (template).
type Object struct {
	Name    string // module name, e.g. "shared1.o"
	UsesGP  bool   // compiled with the global-pointer register enabled
	Text    []byte
	Data    []byte
	BssSize uint32
	Symbols []Symbol
	Relocs  []Reloc

	// Deps and SearchPath are the module's own module list and search
	// path, recorded when the template was pre-processed by lds. They are
	// the scope information used by scoped linking: a module's undefined
	// references resolve first against modules found via its own list and
	// path, then against its parent's, and so on up the DAG.
	Deps       []ModuleRef
	SearchPath []string
}

// SymbolIndex returns the index of the named symbol, or -1.
func (o *Object) SymbolIndex(name string) int {
	for i := range o.Symbols {
		if o.Symbols[i].Name == name {
			return i
		}
	}
	return -1
}

// Lookup returns the named symbol if present.
func (o *Object) Lookup(name string) (*Symbol, bool) {
	if i := o.SymbolIndex(name); i >= 0 {
		return &o.Symbols[i], true
	}
	return nil, false
}

// Exports returns the names of global, defined symbols in sorted order.
func (o *Object) Exports() []string {
	var out []string
	for i := range o.Symbols {
		if s := &o.Symbols[i]; s.Global && s.Defined() {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Undefined returns the names of undefined external references in sorted
// order.
func (o *Object) Undefined() []string {
	var out []string
	for i := range o.Symbols {
		if s := &o.Symbols[i]; !s.Defined() {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// SectionSize returns the byte size of a section.
func (o *Object) SectionSize(s Section) uint32 {
	switch s {
	case SecText:
		return uint32(len(o.Text))
	case SecData:
		return uint32(len(o.Data))
	case SecBss:
		return o.BssSize
	}
	return 0
}

// TotalSize returns text+data+bss rounded as laid out contiguously
// (text, then data, then bss, each word-aligned).
func (o *Object) TotalSize() uint32 {
	return align4(uint32(len(o.Text))) + align4(uint32(len(o.Data))) + align4(o.BssSize)
}

// Layout returns the offsets of the data and bss sections when the module
// is laid out contiguously starting at 0: text at 0, data after text, bss
// after data, all 4-byte aligned.
func (o *Object) Layout() (dataOff, bssOff uint32) {
	dataOff = align4(uint32(len(o.Text)))
	bssOff = dataOff + align4(uint32(len(o.Data)))
	return
}

func align4(v uint32) uint32 { return (v + 3) &^ 3 }

// Validate checks internal consistency: relocation offsets within bounds,
// symbol indices valid, symbol values inside their sections, duplicate
// global definitions rejected.
func (o *Object) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("objfile: module has no name")
	}
	if len(o.Text)%4 != 0 {
		return fmt.Errorf("objfile: %s: text size %d not word aligned", o.Name, len(o.Text))
	}
	seen := map[string]bool{}
	for i := range o.Symbols {
		s := &o.Symbols[i]
		if s.Name == "" {
			return fmt.Errorf("objfile: %s: symbol %d has empty name", o.Name, i)
		}
		if s.Global && s.Defined() {
			if seen[s.Name] {
				return fmt.Errorf("objfile: %s: duplicate global definition of %q", o.Name, s.Name)
			}
			seen[s.Name] = true
		}
		switch s.Section {
		case SecText:
			if s.Value > uint32(len(o.Text)) {
				return fmt.Errorf("objfile: %s: symbol %q beyond text", o.Name, s.Name)
			}
		case SecData:
			if s.Value > uint32(len(o.Data)) {
				return fmt.Errorf("objfile: %s: symbol %q beyond data", o.Name, s.Name)
			}
		case SecBss:
			if s.Value > o.BssSize {
				return fmt.Errorf("objfile: %s: symbol %q beyond bss", o.Name, s.Name)
			}
		}
	}
	for i, r := range o.Relocs {
		if r.Sym < 0 || r.Sym >= len(o.Symbols) {
			return fmt.Errorf("objfile: %s: reloc %d has bad symbol index %d", o.Name, i, r.Sym)
		}
		var lim uint32
		switch r.Section {
		case SecText:
			lim = uint32(len(o.Text))
		case SecData:
			lim = uint32(len(o.Data))
		default:
			return fmt.Errorf("objfile: %s: reloc %d in non-patchable section %v", o.Name, i, r.Section)
		}
		if r.Offset+4 > lim {
			return fmt.Errorf("objfile: %s: reloc %d offset 0x%x beyond %v", o.Name, i, r.Offset, r.Section)
		}
		if r.Offset%4 != 0 {
			return fmt.Errorf("objfile: %s: reloc %d offset 0x%x unaligned", o.Name, i, r.Offset)
		}
	}
	return nil
}

// Clone returns a deep copy of the object (templates are instantiated per
// process for private classes, and instantiation must not scribble on the
// template).
func (o *Object) Clone() *Object {
	c := &Object{
		Name:    o.Name,
		UsesGP:  o.UsesGP,
		Text:    append([]byte(nil), o.Text...),
		Data:    append([]byte(nil), o.Data...),
		BssSize: o.BssSize,
		Symbols: append([]Symbol(nil), o.Symbols...),
		Relocs:  append([]Reloc(nil), o.Relocs...),
		Deps:    append([]ModuleRef(nil), o.Deps...),
	}
	c.SearchPath = append([]string(nil), o.SearchPath...)
	return c
}

// ---- load image ----------------------------------------------------------

// ImageSym is a symbol in a linked load image, at an absolute virtual
// address.
type ImageSym struct {
	Name string
	Addr uint32
	Size uint32
}

// ImageReloc is a retained relocation in a load image: a patch site at an
// absolute virtual address referring to a (possibly still undefined)
// symbol name. IRIX ld refuses to retain relocation information for an
// executable, so lds saves it in this explicit data structure.
type ImageReloc struct {
	Addr   uint32
	Name   string
	Type   RelType
	Addend int32
}

// DynInfo is the data structure lds creates for ldl: the dynamic modules to
// be located at run time, the static public modules already assigned
// addresses, and a description of the search strategy lds used.
type DynInfo struct {
	// DynModules lists modules with a dynamic sharing class, to be found,
	// created if necessary (public only), mapped and linked by ldl.
	DynModules []ModuleRef
	// StaticPublic lists static-public modules and the shared-file-system
	// paths lds resolved them to; ldl maps them before main runs and
	// creates any that do not yet exist from their templates.
	StaticPublic []StaticPublicRef
	// LinkDir is the directory in which static linking occurred.
	LinkDir string
	// CmdPath is the search path given on the lds command line.
	CmdPath []string
	// EnvPath is the LD_LIBRARY_PATH at static link time.
	EnvPath []string
	// DefaultPath is the default library directories.
	DefaultPath []string
}

// StaticPublicRef names a static public module, its shared-fs image path,
// its template path, and its assigned base address.
type StaticPublicRef struct {
	Name     string
	Path     string // shared-fs path of the module instance
	Template string // path of the template .o it is created from
	Addr     uint32
}

// Image is a linked load image (the a.out lds produces): the statically
// linked private portion plus everything ldl needs at run time.
type Image struct {
	Name     string
	Entry    uint32 // entry point (the special crt0 start)
	TextBase uint32
	Text     []byte
	DataBase uint32
	Data     []byte
	BssBase  uint32
	BssSize  uint32

	// TrampBase/TrampSize describe a reserved, executable trampoline area
	// lds leaves at the end of the image for over-long jumps whose targets
	// only become known at run time (when ldl resolves retained
	// relocations).
	TrampBase uint32
	TrampSize uint32

	Symbols []ImageSym   // global symbols at absolute addresses
	Relocs  []ImageReloc // retained relocations (undefined refs from the static portion)
	Dyn     DynInfo

	// PLT lists the jump-table stubs lds emitted for calls to symbols
	// unknown at static link time (the SunOS-style optimisation the paper
	// plans to adopt: "modules first accessed by calling a (named)
	// function will be linked without fault-handling overhead"). Addr is
	// the stub's address inside the image text; Name is the function it
	// stands in for. The stub traps to ldl on first call and is patched
	// into a direct trampoline.
	PLT []ImageSym
}

// Lookup returns the address of a global symbol in the image.
func (im *Image) Lookup(name string) (uint32, bool) {
	for i := range im.Symbols {
		if im.Symbols[i].Name == name {
			return im.Symbols[i].Addr, true
		}
	}
	return 0, false
}

// UndefinedRelocs returns the names referenced by retained relocations, in
// sorted, deduplicated order.
func (im *Image) UndefinedRelocs() []string {
	set := map[string]bool{}
	for i := range im.Relocs {
		set[im.Relocs[i].Name] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
