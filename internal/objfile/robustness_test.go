package objfile

import (
	"math/rand"
	"testing"
)

// Decoders face bytes from the simulated file system that any process may
// have scribbled on; they must reject corruption with errors, never panic
// or hang.

func mutatedCopies(b []byte, rng *rand.Rand, n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		c := append([]byte(nil), b...)
		switch rng.Intn(3) {
		case 0: // flip bytes
			for j := 0; j < 1+rng.Intn(4); j++ {
				c[rng.Intn(len(c))] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate
			c = c[:rng.Intn(len(c))]
		case 2: // grow with junk
			junk := make([]byte, rng.Intn(64))
			rng.Read(junk)
			c = append(c, junk...)
		}
		out = append(out, c)
	}
	return out
}

func TestDecodeObjectNeverPanics(t *testing.T) {
	o := NewBuilder("fuzz.o").
		Word("w", 1, true).
		String("s", "payload", true).
		Bss("b", 64, false).
		Pointer("p", "w", 0, true).
		Dep("other.o", DynamicPublic).
		SearchPath("/lib").
		MustBuild()
	enc, err := o.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i, c := range mutatedCopies(enc, rng, 500) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mutation %d: decoder panicked: %v", i, r)
				}
			}()
			obj, err := DecodeBytes(c)
			if err == nil && obj != nil {
				// A surviving decode must at least be self-consistent.
				if verr := obj.Validate(); verr != nil {
					t.Fatalf("mutation %d: decode accepted invalid object: %v", i, verr)
				}
			}
		}()
	}
}

func TestDecodeImageNeverPanics(t *testing.T) {
	im := &Image{
		Name: "a.out", Entry: 0x400000, TextBase: 0x400000,
		Text: make([]byte, 64), DataBase: 0x500000, Data: make([]byte, 32),
		Symbols: []ImageSym{{Name: "main", Addr: 0x400000}},
		Relocs:  []ImageReloc{{Addr: 0x400010, Name: "x", Type: RelWord32}},
		PLT:     []ImageSym{{Name: "fn", Addr: 0x400040, Size: 12}},
		Dyn: DynInfo{
			DynModules:  []ModuleRef{{Name: "m.o", Class: DynamicPublic}},
			DefaultPath: []string{"/lib"},
		},
	}
	enc, err := im.ImageBytes()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i, c := range mutatedCopies(enc, rng, 500) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mutation %d: image decoder panicked: %v", i, r)
				}
			}()
			_, _ = DecodeImageBytes(c)
		}()
	}
}
