package core

import (
	"bytes"
	"sync"
	"testing"

	"hemlock/internal/lds"
	"hemlock/internal/objfile"
)

func linkCounter(t *testing.T, s *System) *objfile.Image {
	t.Helper()
	if _, err := s.Asm("/lib/counter.o", `
        .data
        .globl  hits
hits:   .word   0
`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Asm("/bin/main.o", `
        .text
        .globl  main
main:   li      $v0, 0
        jr      $ra
`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "counter.o", Class: objfile.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Image
}

func TestVarAccess(t *testing.T) {
	s := NewSystem()
	im := linkCounter(t, s)
	pg, err := s.Launch(im, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pg.Var("hits")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Store(41); err != nil {
		t.Fatal(err)
	}
	got, err := v.Load()
	if err != nil || got != 41 {
		t.Fatalf("load = %d, %v", got, err)
	}
	if err := v.StoreAt(0, 42); err != nil {
		t.Fatal(err)
	}
	if got, _ := v.LoadAt(0); got != 42 {
		t.Fatalf("LoadAt = %d", got)
	}
	if _, err := pg.Var("no_such_symbol"); err == nil {
		t.Fatal("undefined symbol resolved")
	}
}

func TestVarBytesAndStrings(t *testing.T) {
	s := NewSystem()
	if _, err := s.Asm("/lib/msg.o", `
        .data
        .globl  banner
banner: .asciiz "hello, hemlock"
`); err != nil {
		t.Fatal(err)
	}
	s.Asm("/bin/main.o", ".text\n.globl main\nmain: li $v0,0\n jr $ra\n")
	res, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "msg.o", Class: objfile.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pg.Var("banner")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.CString(0)
	if err != nil || got != "hello, hemlock" {
		t.Fatalf("CString = %q, %v", got, err)
	}
	if err := v.WriteBytes(0, []byte("HELLO")); err != nil {
		t.Fatal(err)
	}
	b, err := v.ReadBytes(0, 5)
	if err != nil || string(b) != "HELLO" {
		t.Fatalf("ReadBytes = %q, %v", b, err)
	}
}

func TestSaveLoadPersistsSharedState(t *testing.T) {
	// A value stored in a public module survives a machine "reboot"
	// (save + load of the disk image) — public modules are persistent.
	s1 := NewSystem()
	im := linkCounter(t, s1)
	pg, err := s1.Launch(im, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := pg.Var("hits")
	v.Store(1234)
	imgPath := "/bin/rwho-img"
	if err := s1.SaveExecutable(imgPath, im); err != nil {
		t.Fatal(err)
	}
	var disk bytes.Buffer
	if err := s1.Save(&disk); err != nil {
		t.Fatal(err)
	}

	s2, err := Load(&disk)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := s2.LoadExecutable(imgPath)
	if err != nil {
		t.Fatal(err)
	}
	pg2, err := s2.Launch(im2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := pg2.Var("hits")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v2.Load()
	if err != nil || got != 1234 {
		t.Fatalf("after reboot hits = %d, %v", got, err)
	}
}

func TestFollowPointer(t *testing.T) {
	s := NewSystem()
	s.Asm("/lib/list.o", `
        .data
        .globl  head
head:   .word   node
node:   .word   0, 55
`)
	s.Asm("/bin/main.o", ".text\n.globl main\nmain: li $v0,0\n jr $ra\n")
	res, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "list.o", Class: objfile.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	head, err := pg.Var("head")
	if err != nil {
		t.Fatal(err)
	}
	node, err := head.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := node.LoadAt(4); got != 55 {
		t.Fatalf("node payload = %d", got)
	}
}

func TestBuildAndRunReportsExit(t *testing.T) {
	s := NewSystem()
	s.Asm("/bin/main.o", ".text\n.globl main\nmain: li $v0, 9\n jr $ra\n")
	pg, err := s.BuildAndRun(&lds.Options{
		Output:  "a.out",
		Modules: []lds.Input{{Name: "main.o", Class: objfile.StaticPrivate}},
		LinkDir: "/bin",
	}, 0, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 9 {
		t.Fatalf("exit = %d", pg.P.ExitCode)
	}
}

func TestAddTemplateBuilder(t *testing.T) {
	s := NewSystem()
	obj := objfile.NewBuilder("data.o").
		Word("answer", 42, true).
		MustBuild()
	if err := s.AddTemplate("/lib/data.o", obj); err != nil {
		t.Fatal(err)
	}
	s.Asm("/bin/main.o", ".text\n.globl main\nmain: li $v0,0\n jr $ra\n")
	res, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "data.o", Class: objfile.StaticPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pg.Var("answer")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Load(); got != 42 {
		t.Fatalf("answer = %d", got)
	}
}

func TestOutputCapture(t *testing.T) {
	s := NewSystem()
	s.Asm("/bin/main.o", `
        .text
        .globl  main
main:   li      $v0, 2
        li      $a0, 1
        la      $a1, msg
        li      $a2, 3
        syscall
        li      $v0, 0
        jr      $ra
        .data
msg:    .ascii  "ok!"
`)
	pg, err := s.BuildAndRun(&lds.Options{
		Output:  "a.out",
		Modules: []lds.Input{{Name: "main.o", Class: objfile.StaticPrivate}},
		LinkDir: "/bin",
	}, 0, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Output() != "ok!" {
		t.Fatalf("output = %q", pg.Output())
	}
}

// TestConcurrentIdenticalLaunches: 8 goroutines launch the same image at
// once. The launch singleflight must make exactly one of them link cold
// and register the zygote template; the other seven clone it. Without the
// gate every racer links cold — under the single-run-loop assumption that
// could not happen, under true SMP it is the serve daemon's steady state.
func TestConcurrentIdenticalLaunches(t *testing.T) {
	const racers = 8
	s := NewSystem()
	im := linkCounter(t, s)
	var wg sync.WaitGroup
	pgs := make([]*Program, racers)
	errs := make([]error, racers)
	wg.Add(racers)
	for i := 0; i < racers; i++ {
		go func(i int) {
			defer wg.Done()
			pgs[i], errs[i] = s.Launch(im, 0, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("launch %d: %v", i, errs[i])
		}
	}
	snap := s.Obs().R.Snapshot()
	if got := snap.Counters["kern.zygote_register"]; got != 1 {
		t.Fatalf("zygote_register = %d, want exactly 1 cold link", got)
	}
	if got := snap.Counters["kern.zygote_clone"]; got != racers-1 {
		t.Fatalf("zygote_clone = %d, want %d", got, racers-1)
	}
	if got := snap.Counters["ldl.modules_created"]; got != 1 {
		t.Fatalf("modules_created = %d, want 1", got)
	}
	// Every launch is a working process: the shared module resolves and
	// the shared word is one fleet-wide copy.
	v0, err := pgs[0].Var("hits")
	if err != nil {
		t.Fatal(err)
	}
	if err := v0.Store(77); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < racers; i++ {
		v, err := pgs[i].Var("hits")
		if err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
		got, err := v.Load()
		if err != nil || got != 77 {
			t.Fatalf("launch %d: hits = %d, %v (shared word not shared)", i, got, err)
		}
	}
}
