// Package core assembles the complete Hemlock system — kernel, shared file
// system, static linker, lazy dynamic linker, and fault handler — behind
// one façade, and provides the hosted-program conveniences the examples
// and experiments are written against: building templates, linking
// programs, launching them, and language-level (named, typed) access to
// shared and private variables.
package core

import (
	"fmt"
	"io"
	"os"

	"hemlock/internal/isa"
	"hemlock/internal/kern"
	"hemlock/internal/ldl"
	"hemlock/internal/lds"
	"hemlock/internal/mem"
	"hemlock/internal/objfile"
	"hemlock/internal/obsv"
	"hemlock/internal/shmfs"
)

// System is a booted Hemlock machine.
type System struct {
	K  *kern.Kernel
	FS *shmfs.FS
	LD *lds.Linker
	W  *ldl.World
}

// NewSystem boots a fresh machine with an empty shared file system.
// Stable linking — the persistent link cache and zygote launches — is on by
// default; set HEMLOCK_LINKCACHE=0 / HEMLOCK_ZYGOTE=0 to opt out.
func NewSystem() *System {
	k := kern.New()
	s := &System{K: k, FS: k.FS, LD: lds.New(k.FS), W: ldl.NewWorld(k)}
	s.W.SetStableLinking(envOn("HEMLOCK_LINKCACHE"), envOn("HEMLOCK_ZYGOTE"))
	return s
}

// NewSystemLite boots only the shared file system of a machine — no
// kernel, no linkers. A netshm fleet member needs nothing more (the
// protocol reads and writes segments through FS), and skipping the kernel
// is what makes a 1024-machine fleet cheap enough to boot in a benchmark
// loop. Code paths that need K, LD or W must use NewSystem.
func NewSystemLite() *System {
	phys := mem.NewPhysical(0)
	fs, err := shmfs.New(phys)
	if err != nil {
		panic(fmt.Sprintf("core: shmfs boot failed: %v", err))
	}
	return &System{FS: fs}
}

// envOn reads an on-by-default feature toggle from the environment.
func envOn(name string) bool {
	switch os.Getenv(name) {
	case "0", "off", "false", "no":
		return false
	}
	return true
}

// Load boots a machine from a disk image previously written by Save.
func Load(r io.Reader) (*System, error) {
	phys := mem.NewPhysical(0)
	fs, err := shmfs.Load(r, phys)
	if err != nil {
		return nil, err
	}
	k := kern.NewWithFS(fs, phys)
	s := &System{K: k, FS: fs, LD: lds.New(fs), W: ldl.NewWorld(k)}
	s.W.SetStableLinking(envOn("HEMLOCK_LINKCACHE"), envOn("HEMLOCK_ZYGOTE"))
	return s, nil
}

// SetStableLinking flips the link cache and zygote registry at run time.
// Disabling zygotes drops every parked template.
func (s *System) SetStableLinking(cache, zygote bool) {
	s.W.SetStableLinking(cache, zygote)
	if !zygote {
		s.K.DropAllZygotes()
	}
}

// Save writes the machine's shared file system to a disk image.
func (s *System) Save(w io.Writer) error { return s.FS.Save(w) }

// Obs is the machine's observability hub: the kernel-wide tracer that
// every subsystem emits typed events into, and the registry of counters,
// gauges and histograms. Attach sinks to Obs().T to capture a trace;
// snapshot Obs().R for the metrics.
func (s *System) Obs() *obsv.Obs { return s.K.Obs }

// ResetWorld discards the kernel-resident dynamic-linker state, as a
// reboot would: public modules stay on disk, but their link status is
// re-derived from the templates on next use. The lazy-vs-eager experiment
// uses this to measure cold-start linking repeatedly. Zygote templates are
// kernel-resident state and do not survive the reboot; link-cache files do
// (they live on the shared file system), so post-reset launches may still
// replay.
func (s *System) ResetWorld() {
	s.K.DropAllZygotes()
	cache, zygote := s.W.CacheEnabled, s.W.ZygoteEnabled
	s.W = ldl.NewWorld(s.K)
	s.W.SetStableLinking(cache, zygote)
}

// ---- building ---------------------------------------------------------------

// AddTemplate encodes obj as a HEMO file at path (creating parent
// directories).
func (s *System) AddTemplate(path string, obj *objfile.Object) error {
	b, err := obj.Bytes()
	if err != nil {
		return err
	}
	return s.writeFile(path, b)
}

// Asm assembles src and stores the template at path: the cc step of
// Figure 1.
func (s *System) Asm(path, src string) (*objfile.Object, error) {
	name := baseName(path)
	obj, err := isa.Assemble(name, src)
	if err != nil {
		return nil, err
	}
	if err := s.AddTemplate(path, obj); err != nil {
		return nil, err
	}
	return obj, nil
}

func baseName(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

func dirName(p string) string {
	p = shmfs.Clean(p)
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			if i == 0 {
				return "/"
			}
			return p[:i]
		}
	}
	return "/"
}

func (s *System) writeFile(path string, data []byte) error {
	if err := s.FS.MkdirAll(dirName(path), shmfs.DefaultDirMode, 0); err != nil {
		return err
	}
	return s.FS.WriteFile(path, data, shmfs.DefaultFileMode, 0)
}

// Link runs the static linker.
func (s *System) Link(opts *lds.Options) (*lds.Result, error) { return s.LD.Link(opts) }

// SaveExecutable writes a linked image as a HEMX file at path.
func (s *System) SaveExecutable(path string, im *objfile.Image) error {
	b, err := im.ImageBytes()
	if err != nil {
		return err
	}
	return s.writeFile(path, b)
}

// LoadExecutable reads a HEMX image from path.
func (s *System) LoadExecutable(path string) (*objfile.Image, error) {
	b, err := s.FS.ReadFile(path, 0)
	if err != nil {
		return nil, err
	}
	return objfile.DecodeImageBytes(b)
}

// ---- running ----------------------------------------------------------------

// Program is a launched Hemlock process together with its dynamic-linker
// state.
type Program struct {
	Sys *System
	P   *kern.Process
	LDL *ldl.Proc
}

// Launch spawns a process for uid with the given environment, execs the
// image, and runs the crt0/ldl start-up sequence.
//
// Under stable linking a repeat launch short-circuits: if a zygote template
// is parked under this launch's content-hash key and the key's link-cache
// entry is still valid, the process is CoW-cloned from the fully linked
// template — no exec, no linking. Cold launches park themselves as the
// template for the next identical launch.
func (s *System) Launch(im *objfile.Image, uid int, env map[string]string) (*Program, error) {
	var key string
	if s.W.ZygoteEnabled {
		key = s.W.LaunchKey(im, uid, env)
		// Singleflight: concurrent identical launches (the serve daemon
		// under load, an SMP workload fanning out) serialize on the key.
		// The first one in links cold and parks the zygote; everyone who
		// waited clones it. Exactly one cold link per key.
		unlock := s.W.LockLaunch(key)
		defer unlock()
		if s.K.HasZygote(key) && s.W.CacheValid(key) {
			sp := s.K.Obs.Tracer().Begin("kern", "launch", 0, im.Name)
			zsp := s.K.Obs.Tracer().Begin("link", "zygote_clone", 0, im.Name)
			p, ok := s.K.CloneZygote(key)
			zsp.End(0)
			sp.End(0)
			if ok {
				if pr, prOK := ldl.ProcOf(p); prOK {
					s.W.CreditZygoteLaunch(key)
					return &Program{Sys: s, P: p, LDL: pr}, nil
				}
				// No linker state cloned (should not happen); fall cold.
			}
		}
	}
	p := s.K.Spawn(uid)
	sp := s.K.Obs.Tracer().Begin("kern", "launch", p.PID, im.Name)
	defer sp.End(0)
	for k, v := range env {
		p.Setenv(k, v)
	}
	if err := p.Exec(im); err != nil {
		return nil, err
	}
	pr, err := s.W.Start(p, im)
	if err != nil {
		return nil, err
	}
	if s.W.ZygoteEnabled {
		rsp := s.K.Obs.Tracer().Begin("link", "zygote_register", p.PID, im.Name)
		s.K.RegisterZygote(key, p)
		rsp.End(0)
	}
	return &Program{Sys: s, P: p, LDL: pr}, nil
}

// BuildAndRun is the quickstart path: link the modules, launch, and run to
// completion, returning the program (for its console output and exit code).
func (s *System) BuildAndRun(opts *lds.Options, uid int, env map[string]string, maxSteps uint64) (*Program, error) {
	res, err := s.Link(opts)
	if err != nil {
		return nil, err
	}
	prog, err := s.Launch(res.Image, uid, env)
	if err != nil {
		return nil, err
	}
	if err := prog.Run(maxSteps); err != nil {
		return prog, err
	}
	return prog, nil
}

// Run drives the program's CPU until exit (or maxSteps).
func (pg *Program) Run(maxSteps uint64) error {
	_, err := pg.Sys.K.Run(pg.P, maxSteps)
	return err
}

// Fork forks the program: private segments copied, public shared, linker
// state cloned (via the CloneRuntime hook ldl installed).
func (pg *Program) Fork() (*Program, error) {
	child, err := pg.Sys.K.Fork(pg.P)
	if err != nil {
		return nil, err
	}
	pr, ok := ldl.ProcOf(child)
	if !ok {
		pr = pg.LDL.CloneFor(child)
	}
	return &Program{Sys: pg.Sys, P: child, LDL: pr}, nil
}

// Output returns the program's console output.
func (pg *Program) Output() string { return pg.P.Stdout.String() }

// ---- language-level variable access ------------------------------------------

// Var is a named program object: the hosted-program equivalent of the
// transparent, language-level access Hemlock gives C programs. Loads and
// stores go through the process address space with full fault handling, so
// touching a shared variable in an unlinked module triggers lazy linking
// exactly as a compiled reference would.
type Var struct {
	pg   *Program
	Name string
	Addr uint32
}

// Var resolves a named object (in the image or any linked-in module).
func (pg *Program) Var(name string) (*Var, error) {
	addr, ok := pg.LDL.Resolve(name)
	if !ok {
		return nil, fmt.Errorf("core: undefined symbol %q", name)
	}
	return &Var{pg: pg, Name: name, Addr: addr}, nil
}

// VarAt wraps a raw address (e.g. one read from a shared pointer).
func (pg *Program) VarAt(name string, addr uint32) *Var {
	return &Var{pg: pg, Name: name, Addr: addr}
}

// Load reads the variable as a 32-bit word.
func (v *Var) Load() (uint32, error) { return v.pg.P.LoadWord(v.Addr) }

// Store writes the variable as a 32-bit word.
func (v *Var) Store(val uint32) error { return v.pg.P.StoreWord(v.Addr, val) }

// LoadAt reads the word at byte offset off within the object.
func (v *Var) LoadAt(off uint32) (uint32, error) { return v.pg.P.LoadWord(v.Addr + off) }

// StoreAt writes the word at byte offset off within the object.
func (v *Var) StoreAt(off, val uint32) error { return v.pg.P.StoreWord(v.Addr+off, val) }

// ReadBytes copies n bytes starting at offset off.
func (v *Var) ReadBytes(off, n uint32) ([]byte, error) {
	buf := make([]byte, n)
	if err := v.pg.P.ReadMem(v.Addr+off, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteBytes stores data at offset off.
func (v *Var) WriteBytes(off uint32, data []byte) error {
	return v.pg.P.WriteMem(v.Addr+off, data)
}

// Follow loads the word at offset off and treats it as a pointer,
// returning a Var for the target. Dereferencing it may fault the target
// segment into the address space — the paper's pointer-following.
func (v *Var) Follow(off uint32) (*Var, error) {
	addr, err := v.LoadAt(off)
	if err != nil {
		return nil, err
	}
	return &Var{pg: v.pg, Name: v.Name + "->", Addr: addr}, nil
}

// CString reads the NUL-terminated string at offset off.
func (v *Var) CString(off uint32) (string, error) {
	return v.pg.P.CString(v.Addr + off)
}
