// Package fig reproduces the paper's xfig case study. While editing, xfig
// maintains linked lists that represent the objects comprising a figure.
// The original translated those lists to and from a pointer-free ASCII
// representation when reading and writing files, while ALSO maintaining
// pointer-rich copy routines to duplicate objects within a figure. "The
// Hemlock version of xfig uses the pre-existing copy routines for files,
// at a savings of over 800 lines of code" — saving is instantaneous
// because the figure already lives in a persistent segment, and copying a
// figure file is the same pointer-walk used to duplicate an object.
//
// Two representations of the same figure model:
//
//   - SegFigure: the linked list lives in a shared segment via the
//     per-segment allocator; nodes hold absolute pointers; "save" is a
//     no-op and "load" is Attach;
//   - the ASCII codec (Encode/Decode) plus Save/Load over the simulated
//     file system: the baseline translation path.
package fig

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"hemlock/internal/shalloc"
	"hemlock/internal/shmfs"
)

// Shape kinds.
const (
	KindLine   = 1
	KindCircle = 2
	KindText   = 3
)

// Shape is one figure object.
type Shape struct {
	Kind  uint32
	X, Y  int32
	W, H  int32
	Label string
}

// ErrBadFigure is returned for malformed ASCII figures or segments.
var ErrBadFigure = errors.New("fig: malformed figure")

// ---- ASCII representation (the baseline) ------------------------------------------

// Encode translates the pointer-rich list into the pointer-free ASCII
// form xfig writes to disk.
func Encode(shapes []Shape) []byte {
	var b strings.Builder
	b.WriteString("#FIG-lite 1.0\n")
	fmt.Fprintf(&b, "objects %d\n", len(shapes))
	for _, s := range shapes {
		fmt.Fprintf(&b, "%d %d %d %d %d %s\n", s.Kind, s.X, s.Y, s.W, s.H,
			strconv.Quote(s.Label))
	}
	return []byte(b.String())
}

// Decode parses the ASCII form back into shapes.
func Decode(data []byte) ([]Shape, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) < 2 || lines[0] != "#FIG-lite 1.0" {
		return nil, fmt.Errorf("%w: bad header", ErrBadFigure)
	}
	var count int
	if _, err := fmt.Sscanf(lines[1], "objects %d", &count); err != nil {
		return nil, fmt.Errorf("%w: bad object count", ErrBadFigure)
	}
	shapes := make([]Shape, 0, count)
	for _, line := range lines[2:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 6)
		if len(parts) != 6 {
			return nil, fmt.Errorf("%w: %q", ErrBadFigure, line)
		}
		var s Shape
		vals := make([]int64, 5)
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseInt(parts[i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: %q", ErrBadFigure, line)
			}
			vals[i] = v
		}
		label, err := strconv.Unquote(parts[5])
		if err != nil {
			return nil, fmt.Errorf("%w: label %q", ErrBadFigure, parts[5])
		}
		s.Kind, s.X, s.Y, s.W, s.H = uint32(vals[0]), int32(vals[1]), int32(vals[2]), int32(vals[3]), int32(vals[4])
		s.Label = label
		shapes = append(shapes, s)
	}
	if len(shapes) != count {
		return nil, fmt.Errorf("%w: %d shapes, header says %d", ErrBadFigure, len(shapes), count)
	}
	return shapes, nil
}

// SaveASCII writes the figure to a file the baseline way: translate then
// write.
func SaveASCII(fs *shmfs.FS, path string, shapes []Shape, uid int) error {
	return fs.WriteFile(path, Encode(shapes), shmfs.DefaultFileMode, uid)
}

// LoadASCII reads a figure the baseline way: read then parse.
func LoadASCII(fs *shmfs.FS, path string, uid int) ([]Shape, error) {
	data, err := fs.ReadFile(path, uid)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// ---- segment representation (the Hemlock version) ----------------------------------

// Node layout: 7 words.
const (
	nKind  = 0
	nX     = 4
	nY     = 8
	nW     = 12
	nH     = 16
	nLabel = 20 // pointer to [len | bytes] block, 0 = empty
	nNext  = 24 // pointer to next node, 0 = end
	nSize  = 28
)

const (
	rootMagic = 0x58464947 // "XFIG"
	rootHead  = 4
	rootCount = 8
	rootSize  = 16
)

// SegFigure is a figure living inside a shared segment.
type SegFigure struct {
	m    shalloc.Mem
	base uint32
	heap *shalloc.Heap
}

// Create formats a fresh figure across [base, base+size).
func Create(m shalloc.Mem, base, size uint32) (*SegFigure, error) {
	h, err := shalloc.Init(m, base+rootSize, size-rootSize)
	if err != nil {
		return nil, err
	}
	for off, v := range map[uint32]uint32{base: rootMagic, base + rootHead: 0, base + rootCount: 0} {
		if err := m.StoreWord(off, v); err != nil {
			return nil, err
		}
	}
	return &SegFigure{m: m, base: base, heap: h}, nil
}

// Attach opens an existing figure — this is the whole "load" path of the
// Hemlock xfig.
func Attach(m shalloc.Mem, base uint32) (*SegFigure, error) {
	w, err := m.LoadWord(base)
	if err != nil {
		return nil, err
	}
	if w != rootMagic {
		return nil, fmt.Errorf("%w: no figure at 0x%08x", ErrBadFigure, base)
	}
	h, err := shalloc.Attach(m, base+rootSize)
	if err != nil {
		return nil, err
	}
	return &SegFigure{m: m, base: base, heap: h}, nil
}

// Count returns the number of objects.
func (f *SegFigure) Count() (int, error) {
	n, err := f.m.LoadWord(f.base + rootCount)
	return int(n), err
}

func (f *SegFigure) allocLabel(s string) (uint32, error) {
	if s == "" {
		return 0, nil
	}
	p, err := f.heap.Alloc(uint32(4 + len(s)))
	if err != nil {
		return 0, err
	}
	if err := f.m.StoreWord(p, uint32(len(s))); err != nil {
		return 0, err
	}
	for j := 0; j < len(s); j += 4 {
		var w uint32
		for k := 0; k < 4 && j+k < len(s); k++ {
			w |= uint32(s[j+k]) << uint(24-8*k)
		}
		if err := f.m.StoreWord(p+4+uint32(j), w); err != nil {
			return 0, err
		}
	}
	return p, nil
}

func (f *SegFigure) readLabel(p uint32) (string, error) {
	if p == 0 {
		return "", nil
	}
	n, err := f.m.LoadWord(p)
	if err != nil {
		return "", err
	}
	if n > shmfs.MaxFile {
		return "", fmt.Errorf("%w: label length %d", ErrBadFigure, n)
	}
	out := make([]byte, 0, n)
	for j := uint32(0); j < n; j += 4 {
		w, err := f.m.LoadWord(p + 4 + j)
		if err != nil {
			return "", err
		}
		for k := uint32(0); k < 4 && j+k < n; k++ {
			out = append(out, byte(w>>uint(24-8*k)))
		}
	}
	return string(out), nil
}

// writeNode fills a node block from a shape (label freshly allocated).
func (f *SegFigure) writeNode(node uint32, s Shape, next uint32) error {
	label, err := f.allocLabel(s.Label)
	if err != nil {
		return err
	}
	for off, v := range map[uint32]uint32{
		node + nKind: s.Kind, node + nX: uint32(s.X), node + nY: uint32(s.Y),
		node + nW: uint32(s.W), node + nH: uint32(s.H),
		node + nLabel: label, node + nNext: next,
	} {
		if err := f.m.StoreWord(off, v); err != nil {
			return err
		}
	}
	return nil
}

func (f *SegFigure) readNode(node uint32) (Shape, uint32, error) {
	var s Shape
	words := make([]uint32, 7)
	for i := range words {
		w, err := f.m.LoadWord(node + uint32(4*i))
		if err != nil {
			return s, 0, err
		}
		words[i] = w
	}
	s.Kind, s.X, s.Y = words[0], int32(words[1]), int32(words[2])
	s.W, s.H = int32(words[3]), int32(words[4])
	var err error
	if s.Label, err = f.readLabel(words[5]); err != nil {
		return s, 0, err
	}
	return s, words[6], nil
}

// Add prepends a shape to the list (xfig draws newest-first).
func (f *SegFigure) Add(s Shape) error {
	node, err := f.heap.Alloc(nSize)
	if err != nil {
		return err
	}
	head, err := f.m.LoadWord(f.base + rootHead)
	if err != nil {
		return err
	}
	if err := f.writeNode(node, s, head); err != nil {
		return err
	}
	if err := f.m.StoreWord(f.base+rootHead, node); err != nil {
		return err
	}
	n, err := f.m.LoadWord(f.base + rootCount)
	if err != nil {
		return err
	}
	return f.m.StoreWord(f.base+rootCount, n+1)
}

// Shapes walks the list and materialises every shape, newest first.
func (f *SegFigure) Shapes() ([]Shape, error) {
	var out []Shape
	node, err := f.m.LoadWord(f.base + rootHead)
	if err != nil {
		return nil, err
	}
	for node != 0 {
		s, next, err := f.readNode(node)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		node = next
		if len(out) > 1<<20 {
			return nil, fmt.Errorf("%w: list cycle", ErrBadFigure)
		}
	}
	return out, nil
}

// Duplicate copies the shape at index i (0 = newest) and prepends the
// copy: the pointer-rich copy routine xfig already had, operating directly
// on segment memory.
func (f *SegFigure) Duplicate(i int) error {
	node, err := f.m.LoadWord(f.base + rootHead)
	if err != nil {
		return err
	}
	for ; i > 0 && node != 0; i-- {
		if node, err = f.m.LoadWord(node + nNext); err != nil {
			return err
		}
	}
	if node == 0 {
		return fmt.Errorf("%w: index out of range", ErrBadFigure)
	}
	s, _, err := f.readNode(node)
	if err != nil {
		return err
	}
	return f.Add(s)
}

// Remove deletes the shape at index i, freeing its node and label back to
// the segment heap.
func (f *SegFigure) Remove(i int) error {
	prev := f.base + rootHead
	node, err := f.m.LoadWord(prev)
	if err != nil {
		return err
	}
	for ; i > 0 && node != 0; i-- {
		prev = node + nNext
		if node, err = f.m.LoadWord(prev); err != nil {
			return err
		}
	}
	if node == 0 {
		return fmt.Errorf("%w: index out of range", ErrBadFigure)
	}
	next, err := f.m.LoadWord(node + nNext)
	if err != nil {
		return err
	}
	if err := f.m.StoreWord(prev, next); err != nil {
		return err
	}
	label, err := f.m.LoadWord(node + nLabel)
	if err != nil {
		return err
	}
	if label != 0 {
		if err := f.heap.Free(label); err != nil {
			return err
		}
	}
	if err := f.heap.Free(node); err != nil {
		return err
	}
	n, err := f.m.LoadWord(f.base + rootCount)
	if err != nil {
		return err
	}
	return f.m.StoreWord(f.base+rootCount, n-1)
}

// SyntheticShape generates a deterministic shape for workload i.
func SyntheticShape(i int) Shape {
	kinds := []uint32{KindLine, KindCircle, KindText}
	s := Shape{
		Kind: kinds[i%3],
		X:    int32(i * 13 % 1000),
		Y:    int32(i * 29 % 800),
		W:    int32(i%200 + 1),
		H:    int32(i%120 + 1),
	}
	if s.Kind == KindText {
		s.Label = fmt.Sprintf("label-%d", i)
	}
	return s
}
