package fig

import (
	"errors"
	"reflect"
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/mem"
	"hemlock/internal/shmfs"
)

func TestASCIICodecRoundTrip(t *testing.T) {
	shapes := make([]Shape, 20)
	for i := range shapes {
		shapes[i] = SyntheticShape(i)
	}
	got, err := Decode(Encode(shapes))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shapes, got) {
		t.Fatal("ASCII round trip mismatch")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		[]byte("not a figure"),
		[]byte("#FIG-lite 1.0\nobjects banana\n"),
		[]byte("#FIG-lite 1.0\nobjects 1\n1 2 3\n"),
		[]byte("#FIG-lite 1.0\nobjects 2\n1 0 0 1 1 \"x\"\n"),
		[]byte("#FIG-lite 1.0\nobjects 1\n1 0 0 1 1 unquoted\n"),
	}
	for _, c := range cases {
		if _, err := Decode(c); !errors.Is(err, ErrBadFigure) {
			t.Errorf("accepted %q: %v", c, err)
		}
	}
}

func TestSaveLoadASCII(t *testing.T) {
	fs, _ := shmfs.New(mem.NewPhysical(0))
	shapes := []Shape{SyntheticShape(0), SyntheticShape(2)}
	if err := SaveASCII(fs, "/figs/a.fig", shapes, 0); err == nil {
		t.Fatal("save into missing dir should fail")
	}
	fs.MkdirAll("/figs", shmfs.DefaultDirMode, 0)
	if err := SaveASCII(fs, "/figs/a.fig", shapes, 0); err != nil {
		t.Fatal(err)
	}
	got, err := LoadASCII(fs, "/figs/a.fig", 0)
	if err != nil || !reflect.DeepEqual(shapes, got) {
		t.Fatalf("load: %v %v", got, err)
	}
}

func segFig(t *testing.T) (*SegFigure, *addrspace.Space, uint32) {
	t.Helper()
	as := addrspace.New(mem.NewPhysical(0))
	base := uint32(0x30300000)
	if err := as.MapAnon(base, 256*1024, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	f, err := Create(as, base, 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	return f, as, base
}

func TestSegFigureAddAndWalk(t *testing.T) {
	f, _, _ := segFig(t)
	var want []Shape
	for i := 0; i < 30; i++ {
		s := SyntheticShape(i)
		if err := f.Add(s); err != nil {
			t.Fatal(err)
		}
		want = append([]Shape{s}, want...) // newest first
	}
	got, err := f.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("segment walk mismatch")
	}
	if n, _ := f.Count(); n != 30 {
		t.Fatalf("count = %d", n)
	}
}

func TestSegFigurePersistsAcrossAttach(t *testing.T) {
	// "Save" is free: a later attach (a new xfig run) sees the figure.
	f, as, base := segFig(t)
	f.Add(SyntheticShape(5))
	f.Add(SyntheticShape(8))
	g, err := Attach(as, base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != SyntheticShape(8) {
		t.Fatalf("attached figure: %+v", got)
	}
}

func TestSegFigureDuplicate(t *testing.T) {
	f, _, _ := segFig(t)
	f.Add(SyntheticShape(2)) // a text shape with a label
	if err := f.Duplicate(0); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Shapes()
	if len(got) != 2 || got[0] != got[1] {
		t.Fatalf("duplicate: %+v", got)
	}
	if err := f.Duplicate(5); !errors.Is(err, ErrBadFigure) {
		t.Fatalf("out-of-range duplicate: %v", err)
	}
}

func TestSegFigureRemoveFreesSpace(t *testing.T) {
	f, _, _ := segFig(t)
	for i := 0; i < 10; i++ {
		f.Add(SyntheticShape(i))
	}
	// Remove from the middle; list stays consistent.
	if err := f.Remove(4); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Shapes()
	if len(got) != 9 {
		t.Fatalf("len = %d", len(got))
	}
	if n, _ := f.Count(); n != 9 {
		t.Fatalf("count = %d", n)
	}
	// Removing everything returns the space: a big add still fits after
	// churning.
	for i := 0; i < 9; i++ {
		if err := f.Remove(0); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := f.Count(); n != 0 {
		t.Fatalf("count = %d after removing all", n)
	}
	for i := 0; i < 1000; i++ {
		if err := f.Add(SyntheticShape(i)); err != nil {
			t.Fatalf("add %d after churn: %v", i, err)
		}
	}
}

func TestSegAndASCIIAgree(t *testing.T) {
	// The same figure through both representations is identical.
	f, _, _ := segFig(t)
	var shapes []Shape
	for i := 0; i < 15; i++ {
		s := SyntheticShape(i)
		f.Add(s)
		shapes = append([]Shape{s}, shapes...)
	}
	segShapes, err := f.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	ascii, err := Decode(Encode(shapes))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(segShapes, ascii) {
		t.Fatal("representations diverge")
	}
}

func TestAttachRejectsRawSegment(t *testing.T) {
	as := addrspace.New(mem.NewPhysical(0))
	as.MapAnon(0x30300000, 4096, addrspace.ProtRW)
	if _, err := Attach(as, 0x30300000); !errors.Is(err, ErrBadFigure) {
		t.Fatalf("raw segment accepted: %v", err)
	}
}
