// Package layout fixes the Hemlock address-space map of Figure 3:
//
//	0x00000000 - 0x10000000   program text + shared libraries (private)
//	0x10000000 - 0x30000000   bss/data + heap (private)
//	0x30000000 - 0x70000000   shared file system (public, 1 GB)
//	0x70000000 - 0x7FFF0000   stack (private)
//	0x80000000 - 0xFFFFFFFF   kernel
//
// The public portion of the address space appears the same in every
// process; addresses in the private portion are overloaded and mean
// different things to different processes.
package layout

import "hemlock/internal/shmfs"

// Region boundaries.
const (
	TextBase      uint32 = 0x00400000 // start of the main program's text
	TextLimit     uint32 = 0x10000000
	PrivDataBase  uint32 = 0x10000000 // private data/bss/heap region
	PrivDataLimit uint32 = 0x30000000
	SharedBase    uint32 = shmfs.Base  // 0x30000000
	SharedLimit   uint32 = shmfs.Limit // 0x70000000
	StackBase     uint32 = 0x70000000
	StackTop      uint32 = 0x7FFF0000 // stacks grow down from here
	KernelBase    uint32 = 0x80000000
)

// DefaultStackSize is the stack window of a new process: faults anywhere in
// [StackTop-DefaultStackSize, StackTop) grow the stack by mapping the page
// demand-zero. Only StackEagerSize of it is mapped at exec time, so launch
// (and a zygote clone, which pays per mapped page) does not touch the 60+
// pages a typical program never reaches.
const DefaultStackSize uint32 = 256 * 1024

// StackEagerSize is the portion of the stack window mapped eagerly at exec.
const StackEagerSize uint32 = 16 * 1024

// Public reports whether addr lies in the public portion of the address
// space (the shared file system region): it is interpreted identically in
// every protection domain.
func Public(addr uint32) bool { return addr >= SharedBase && addr < SharedLimit }

// Private reports whether addr lies in the private, overloaded portion of
// user space.
func Private(addr uint32) bool {
	return addr < KernelBase && !Public(addr)
}

// Kernel reports whether addr lies in the kernel region.
func Kernel(addr uint32) bool { return addr >= KernelBase }

// RegionName names the Figure 3 region containing addr, for diagnostics
// and the layout printer.
func RegionName(addr uint32) string {
	switch {
	case addr < TextLimit:
		return "text+libs (private)"
	case addr < PrivDataLimit:
		return "data/heap (private)"
	case addr < SharedLimit:
		return "shared file system (public)"
	case addr < KernelBase:
		return "stack (private)"
	default:
		return "kernel"
	}
}
