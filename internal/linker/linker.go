// Package linker implements the machinery shared by lds (the static linker)
// and ldl (the lazy dynamic linker): module placement, symbol tables,
// relocation application, and over-long-branch trampolines.
//
// The linkers "relocate modules to reside at particular addresses (by
// finalizing absolute references to internal symbols ...), and they link
// modules together by resolving cross-module references". Relocation
// application is incremental: references whose symbols cannot yet be
// resolved are left pending, which is what makes fault-driven lazy linking
// possible — ldl maps a module without access permissions and resolves the
// pending set when the first touch faults.
package linker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"hemlock/internal/isa"
	"hemlock/internal/objfile"
)

// Errors.
var (
	ErrDuplicateSymbol = errors.New("linker: duplicate symbol definition")
	ErrUsesGP          = errors.New("linker: module compiled with gp register enabled (24-bit offsets are incompatible with a large sparse address space)")
	ErrBranchRange     = errors.New("linker: branch target out of range")
	ErrTrampolines     = errors.New("linker: trampoline area exhausted")
)

// Placed is a module instance assigned a base address. Sections are laid
// out contiguously: text at Base, data and bss after it (word-aligned), and
// a trampoline area after bss for over-long jump fragments.
type Placed struct {
	Obj  *objfile.Object
	Base uint32

	dataOff   uint32
	bssOff    uint32
	trampOff  uint32 // offset of the trampoline area
	trampUsed uint32
	trampSize uint32

	// trampFor memoises trampoline addresses per target so multiple
	// over-long jumps to one target share a fragment.
	trampFor map[uint32]uint32
}

// Place assigns obj the given base address. It fails for gp-using modules:
// ldl "insists that modules be compiled with a flag that disables use of
// the processor's performance-enhancing global pointer register".
func Place(obj *objfile.Object, base uint32) (*Placed, error) {
	if obj.UsesGP {
		return nil, fmt.Errorf("%w: %s", ErrUsesGP, obj.Name)
	}
	dataOff, bssOff := obj.Layout()
	trampOff := bssOff + align4(obj.BssSize)
	return &Placed{
		Obj:       obj,
		Base:      base,
		dataOff:   dataOff,
		bssOff:    bssOff,
		trampOff:  trampOff,
		trampSize: TrampolineReserve(obj),
		trampFor:  map[uint32]uint32{},
	}, nil
}

func align4(v uint32) uint32 { return (v + 3) &^ 3 }

// TrampolineReserve returns the worst-case trampoline area size for a
// module: one fragment per JUMP26 relocation.
func TrampolineReserve(obj *objfile.Object) uint32 {
	var n uint32
	for _, r := range obj.Relocs {
		if r.Type == objfile.RelJump26 {
			n++
		}
	}
	return n * isa.TrampolineSize
}

// Size returns the total mapped size of the placed module, including the
// trampoline area.
func (p *Placed) Size() uint32 { return p.trampOff + p.trampSize }

// TextAddr/DataAddr/BssAddr return the section base addresses.
func (p *Placed) TextAddr() uint32 { return p.Base }

// DataAddr returns the data section base address.
func (p *Placed) DataAddr() uint32 { return p.Base + p.dataOff }

// BssAddr returns the bss base address.
func (p *Placed) BssAddr() uint32 { return p.Base + p.bssOff }

// SymAddr returns the absolute address of symbol index i; undefined
// symbols report ok=false.
func (p *Placed) SymAddr(i int) (uint32, bool) {
	s := &p.Obj.Symbols[i]
	switch s.Section {
	case objfile.SecText:
		return p.Base + s.Value, true
	case objfile.SecData:
		return p.Base + p.dataOff + s.Value, true
	case objfile.SecBss:
		return p.Base + p.bssOff + s.Value, true
	case objfile.SecAbs:
		return s.Value, true
	}
	return 0, false
}

// AddrOf returns the absolute address of a named symbol.
func (p *Placed) AddrOf(name string) (uint32, bool) {
	i := p.Obj.SymbolIndex(name)
	if i < 0 {
		return 0, false
	}
	return p.SymAddr(i)
}

// Exports returns the module's global defined symbols with their absolute
// addresses, name-sorted.
func (p *Placed) Exports() []objfile.ImageSym {
	var out []objfile.ImageSym
	for i := range p.Obj.Symbols {
		s := &p.Obj.Symbols[i]
		if !s.Global || !s.Defined() {
			continue
		}
		addr, _ := p.SymAddr(i)
		out = append(out, objfile.ImageSym{Name: s.Name, Addr: addr, Size: s.Size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Image returns the initialised bytes of the placed module (text followed
// by padding and data) ready to be written at Base. Bss and the trampoline
// area are zero and need no bytes.
func (p *Placed) Image() []byte {
	img := make([]byte, p.bssOff)
	copy(img, p.Obj.Text)
	copy(img[p.dataOff:], p.Obj.Data)
	return img
}

// ---- patchers --------------------------------------------------------------

// Patcher is where relocations are applied: either a raw byte image being
// assembled by lds, or a live address space being patched by ldl.
// *addrspace.Space satisfies Patcher directly.
type Patcher interface {
	LoadWord(addr uint32) (uint32, error)
	StoreWord(addr, val uint32) error
}

// BytesPatcher applies relocations to an in-memory image that will later
// be written to a file or load image. Addresses are absolute; the byte
// slice covers [Base, Base+len).
type BytesPatcher struct {
	Base uint32
	B    []byte
}

// LoadWord reads the big-endian word at the absolute address addr.
func (bp *BytesPatcher) LoadWord(addr uint32) (uint32, error) {
	off := addr - bp.Base
	if addr < bp.Base || int(off)+4 > len(bp.B) {
		return 0, fmt.Errorf("linker: patch address 0x%08x outside image [0x%08x,+0x%x)", addr, bp.Base, len(bp.B))
	}
	return binary.BigEndian.Uint32(bp.B[off:]), nil
}

// StoreWord writes the big-endian word at the absolute address addr.
func (bp *BytesPatcher) StoreWord(addr, val uint32) error {
	off := addr - bp.Base
	if addr < bp.Base || int(off)+4 > len(bp.B) {
		return fmt.Errorf("linker: patch address 0x%08x outside image [0x%08x,+0x%x)", addr, bp.Base, len(bp.B))
	}
	binary.BigEndian.PutUint32(bp.B[off:], val)
	return nil
}

// ---- symbol tables ----------------------------------------------------------

// Table is a symbol table mapping names to absolute addresses.
type Table struct {
	syms map[string]objfile.ImageSym
}

// NewTable returns an empty symbol table.
func NewTable() *Table { return &Table{syms: map[string]objfile.ImageSym{}} }

// Define adds a symbol, rejecting duplicates: "if more than one module
// exports an object with a given name, the linker either picks one ... or
// reports an error" — Table reports the error; scoped linking (package ldl)
// is what avoids the conflict.
func (t *Table) Define(name string, addr, size uint32) error {
	if old, dup := t.syms[name]; dup {
		if old.Addr == addr {
			return nil
		}
		return fmt.Errorf("%w: %q at 0x%08x and 0x%08x", ErrDuplicateSymbol, name, old.Addr, addr)
	}
	t.syms[name] = objfile.ImageSym{Name: name, Addr: addr, Size: size}
	return nil
}

// DefineFirst adds a symbol only if absent ("picks the first"), reporting
// whether it was added.
func (t *Table) DefineFirst(name string, addr, size uint32) bool {
	if _, dup := t.syms[name]; dup {
		return false
	}
	t.syms[name] = objfile.ImageSym{Name: name, Addr: addr, Size: size}
	return true
}

// AddExports defines every global symbol of a placed module.
func (t *Table) AddExports(p *Placed) error {
	for _, s := range p.Exports() {
		if err := t.Define(s.Name, s.Addr, s.Size); err != nil {
			return err
		}
	}
	return nil
}

// Resolve looks a name up.
func (t *Table) Resolve(name string) (uint32, bool) {
	s, ok := t.syms[name]
	return s.Addr, ok
}

// Symbols returns all entries name-sorted.
func (t *Table) Symbols() []objfile.ImageSym {
	out := make([]objfile.ImageSym, 0, len(t.syms))
	for _, s := range t.syms {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of symbols.
func (t *Table) Len() int { return len(t.syms) }

// Resolver maps a symbol name to an address. The bool reports success;
// unresolved references stay pending (for lazy linking) rather than
// failing.
type Resolver func(name string) (uint32, bool)

// ---- relocation application -------------------------------------------------

// siteAddr returns the absolute address of a relocation site.
func (p *Placed) siteAddr(r *objfile.Reloc) uint32 {
	if r.Section == objfile.SecData {
		return p.Base + p.dataOff + r.Offset
	}
	return p.Base + r.Offset
}

// SiteAddr returns the absolute address of a relocation site (lds uses it
// to convert a module's pending relocations into retained image
// relocations).
func (p *Placed) SiteAddr(r *objfile.Reloc) uint32 { return p.siteAddr(r) }

// trampoline returns (allocating if needed) the address of a trampoline
// fragment that jumps to target, writing its code through pat.
func (p *Placed) trampoline(target uint32, pat Patcher) (uint32, error) {
	if addr, ok := p.trampFor[target]; ok {
		return addr, nil
	}
	if p.trampUsed+isa.TrampolineSize > p.trampSize {
		return 0, fmt.Errorf("%w: module %s", ErrTrampolines, p.Obj.Name)
	}
	addr := p.Base + p.trampOff + p.trampUsed
	for i, w := range isa.TrampolineWords(target, false) {
		if err := pat.StoreWord(addr+uint32(i)*4, w); err != nil {
			return 0, err
		}
	}
	p.trampUsed += isa.TrampolineSize
	p.trampFor[target] = addr
	return addr, nil
}

// apply applies a single relocation given the resolved symbol address.
func (p *Placed) apply(r *objfile.Reloc, symAddr uint32, pat Patcher) error {
	site := p.siteAddr(r)
	target := symAddr + uint32(r.Addend)
	w, err := pat.LoadWord(site)
	if err != nil {
		return err
	}
	switch r.Type {
	case objfile.RelWord32:
		return pat.StoreWord(site, target)
	case objfile.RelHi16:
		return pat.StoreWord(site, isa.PatchImm16(w, isa.Hi16(target)))
	case objfile.RelLo16:
		return pat.StoreWord(site, isa.PatchImm16(w, isa.Lo16(target)))
	case objfile.RelJump26:
		if !isa.JumpReach(site, target) {
			// "lds and ldl arrange for over-long branches to be replaced
			// with jumps to new, nearby code fragments that load the
			// appropriate target address into a register and jump
			// indirectly." The fragment lives in the module's trampoline
			// area, which IS reachable (same placement).
			tramp, terr := p.trampoline(target, pat)
			if terr != nil {
				return terr
			}
			if !isa.JumpReach(site, tramp) {
				return fmt.Errorf("linker: trampoline at 0x%08x unreachable from 0x%08x", tramp, site)
			}
			target = tramp
		}
		return pat.StoreWord(site, isa.PatchJump26(w, target))
	case objfile.RelBranch16:
		off, ok := isa.BranchOffset(site, target)
		if !ok {
			return fmt.Errorf("%w: from 0x%08x to 0x%08x", ErrBranchRange, site, target)
		}
		return pat.StoreWord(site, isa.PatchImm16(w, off))
	case objfile.RelGPRel16:
		return fmt.Errorf("%w: %s has a gp-relative reference", ErrUsesGP, p.Obj.Name)
	}
	return fmt.Errorf("linker: unknown relocation type %v", r.Type)
}

// ApplyRelocs applies every relocation in relocs whose symbol resolves
// (internal symbols resolve through the placement itself; external ones
// through resolve). It returns the still-pending relocations. A nil relocs
// means "all of the module's relocations".
func (p *Placed) ApplyRelocs(relocs []objfile.Reloc, resolve Resolver, pat Patcher) ([]objfile.Reloc, error) {
	if relocs == nil {
		relocs = p.Obj.Relocs
	}
	var pending []objfile.Reloc
	for i := range relocs {
		r := relocs[i]
		sym := &p.Obj.Symbols[r.Sym]
		var addr uint32
		if sym.Defined() {
			a, ok := p.SymAddr(r.Sym)
			if !ok {
				return nil, fmt.Errorf("linker: cannot place symbol %q", sym.Name)
			}
			addr = a
		} else if resolve != nil {
			a, ok := resolve(sym.Name)
			if !ok {
				pending = append(pending, r)
				continue
			}
			addr = a
		} else {
			pending = append(pending, r)
			continue
		}
		if err := p.apply(&r, addr, pat); err != nil {
			return nil, err
		}
	}
	return pending, nil
}

// RelocateInternal applies only the module-internal relocations (what
// "internally relocated on the assumption that it resides at that address"
// means for a freshly created public module) and returns the external
// references still pending.
func (p *Placed) RelocateInternal(pat Patcher) ([]objfile.Reloc, error) {
	return p.ApplyRelocs(nil, nil, pat)
}
