package linker

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/mem"
	"hemlock/internal/objfile"
	"hemlock/internal/vm"
)

func mustAssemble(t *testing.T, name, src string) *objfile.Object {
	t.Helper()
	o, err := isa.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestPlaceLayout(t *testing.T) {
	o := mustAssemble(t, "m.s", `
        .text
        .globl f
f:      nop
        halt
        .data
        .globl v
v:      .word 9
        .comm b, 16
`)
	p, err := Place(o, 0x30100000)
	if err != nil {
		t.Fatal(err)
	}
	if p.TextAddr() != 0x30100000 {
		t.Fatalf("text at 0x%x", p.TextAddr())
	}
	if p.DataAddr() != 0x30100008 {
		t.Fatalf("data at 0x%x, want text+8", p.DataAddr())
	}
	if p.BssAddr() != 0x3010000C {
		t.Fatalf("bss at 0x%x", p.BssAddr())
	}
	if addr, ok := p.AddrOf("v"); !ok || addr != p.DataAddr() {
		t.Fatalf("v at 0x%x", addr)
	}
	if addr, ok := p.AddrOf("b"); !ok || addr != p.BssAddr() {
		t.Fatalf("b at 0x%x", addr)
	}
	if p.Size() < o.TotalSize() {
		t.Fatalf("size %d < total %d", p.Size(), o.TotalSize())
	}
}

func TestPlaceRejectsGP(t *testing.T) {
	o := mustAssemble(t, "gp.s", ".usesgp\n.text\nnop\n")
	if _, err := Place(o, 0x1000); !errors.Is(err, ErrUsesGP) {
		t.Fatalf("want ErrUsesGP, got %v", err)
	}
}

func TestInternalRelocationHiLo(t *testing.T) {
	// la of a module-internal symbol must compose to the placed address,
	// including the HI16 carry case (data placed past a 0x8000 boundary).
	o := mustAssemble(t, "hilo.s", `
        .text
        .globl f
f:      la      $t0, v
        lw      $t1, 0($t0)
        halt
        .data
        .space  0x7ff8      # push v past the carry boundary
        .globl  v
v:      .word   4242
`)
	base := uint32(0x30100000)
	p, err := Place(o, base)
	if err != nil {
		t.Fatal(err)
	}
	img := p.Image()
	pat := &BytesPatcher{Base: base, B: img}
	pending, err := p.RelocateInternal(pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("pending relocs on self-contained module: %v", pending)
	}
	// Execute it.
	as := addrspace.New(mem.NewPhysical(0))
	if err := as.MapAnon(base, p.Size(), addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Write(base, img); err != nil {
		t.Fatal(err)
	}
	c := vm.New(as)
	c.PC = base
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[9] != 4242 {
		t.Fatalf("$t1 = %d, want 4242", c.Regs[9])
	}
	vAddr, _ := p.AddrOf("v")
	if c.Regs[8] != vAddr {
		t.Fatalf("$t0 = 0x%x, want 0x%x", c.Regs[8], vAddr)
	}
}

func TestExternalResolution(t *testing.T) {
	o := mustAssemble(t, "ext.s", `
        .text
        la      $t0, other_var
        halt
        .data
ptr:    .word   other_var+8
`)
	base := uint32(0x00400000)
	p, _ := Place(o, base)
	img := p.Image()
	pat := &BytesPatcher{Base: base, B: img}
	// First pass: nothing resolves; relocations stay pending.
	pending, err := p.ApplyRelocs(nil, func(string) (uint32, bool) { return 0, false }, pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 3 { // HI16+LO16+WORD32
		t.Fatalf("pending = %d, want 3", len(pending))
	}
	// Second pass resolves only the pending set.
	table := NewTable()
	table.Define("other_var", 0x30200010, 4)
	left, err := p.ApplyRelocs(pending, table.Resolve, pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("still pending: %v", left)
	}
	// The WORD32 site got S+A.
	ptrAddr, _ := p.AddrOf("ptr")
	got := binary.BigEndian.Uint32(img[ptrAddr-base:])
	if got != 0x30200018 {
		t.Fatalf("pointer = 0x%x, want 0x30200018", got)
	}
	// The HI16/LO16 pair composes to the symbol address.
	hi := isa.Decode(binary.BigEndian.Uint32(img[0:]))
	lo := isa.Decode(binary.BigEndian.Uint32(img[4:]))
	if isa.ComposeHiLo(hi.Imm, lo.Imm) != 0x30200010 {
		t.Fatalf("hi/lo compose to 0x%x", isa.ComposeHiLo(hi.Imm, lo.Imm))
	}
}

func TestJump26WithinRegion(t *testing.T) {
	o := mustAssemble(t, "j.s", `
        .text
        jal     helper
        halt
        .globl  helper
helper: jr      $ra
`)
	base := uint32(0x00400000)
	p, _ := Place(o, base)
	img := p.Image()
	pending, err := p.RelocateInternal(&BytesPatcher{Base: base, B: img})
	if err != nil || len(pending) != 0 {
		t.Fatalf("relocate: %v %v", pending, err)
	}
	w := binary.BigEndian.Uint32(img[0:])
	if got := isa.Jump26Target(w, base); got != base+8 {
		t.Fatalf("jal target 0x%x, want 0x%x", got, base+8)
	}
}

func TestJump26CrossRegionUsesTrampoline(t *testing.T) {
	// A call from private text (region 0) to a shared-segment function
	// (region 3) cannot be encoded in 26 bits; the linker must emit a
	// trampoline and route the call through it.
	o := mustAssemble(t, "far.s", `
        .text
        jal     far_func
        halt
`)
	base := uint32(0x00400000)
	target := uint32(0x30150000)
	p, _ := Place(o, base)
	// Mapped image includes the trampoline area.
	as := addrspace.New(mem.NewPhysical(0))
	if err := as.MapAnon(base, p.Size(), addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Write(base, p.Image()); err != nil {
		t.Fatal(err)
	}
	table := NewTable()
	table.Define("far_func", target, 0)
	pending, err := p.ApplyRelocs(nil, table.Resolve, as)
	if err != nil || len(pending) != 0 {
		t.Fatalf("apply: %v %v", pending, err)
	}
	// The JAL now targets the trampoline, inside this module's area.
	w, _ := as.LoadWord(base)
	tramp := isa.Jump26Target(w, base)
	if tramp < base || tramp >= base+p.Size() {
		t.Fatalf("jal targets 0x%x, outside module [0x%x,+0x%x)", tramp, base, p.Size())
	}
	// Execute: define far_func as halt; the call must arrive there.
	if err := as.MapAnon(addrspace.PageBase(target), mem.PageSize, addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	as.StoreWord(target, uint32(63)<<26) // halt
	c := vm.New(as)
	c.PC = base
	ev, err := c.Run(20)
	if err != nil || ev != vm.EventHalt {
		t.Fatalf("run: %v %v", ev, err)
	}
	if c.PC != target {
		t.Fatalf("halted at 0x%x, want 0x%x", c.PC, target)
	}
	// JAL set $ra to the instruction after the call site, not after the
	// trampoline.
	if c.Regs[isa.RegRA] != base+4 {
		t.Fatalf("$ra = 0x%x, want 0x%x", c.Regs[isa.RegRA], base+4)
	}
}

func TestTrampolinesSharedPerTarget(t *testing.T) {
	o := mustAssemble(t, "two.s", `
        .text
        jal     far_func
        jal     far_func
        halt
`)
	base := uint32(0x00400000)
	p, _ := Place(o, base)
	img := make([]byte, p.Size())
	copy(img, p.Image())
	pat := &BytesPatcher{Base: base, B: img}
	table := NewTable()
	table.Define("far_func", 0x30150000, 0)
	if _, err := p.ApplyRelocs(nil, table.Resolve, pat); err != nil {
		t.Fatal(err)
	}
	w1 := binary.BigEndian.Uint32(img[0:])
	w2 := binary.BigEndian.Uint32(img[4:])
	if isa.Jump26Target(w1, base) != isa.Jump26Target(w2, base+4) {
		t.Fatal("two jumps to one target should share a trampoline")
	}
	if p.trampUsed != isa.TrampolineSize {
		t.Fatalf("trampUsed = %d, want one fragment", p.trampUsed)
	}
}

func TestTableDuplicateDetection(t *testing.T) {
	tb := NewTable()
	if err := tb.Define("x", 0x1000, 4); err != nil {
		t.Fatal(err)
	}
	// Same address is idempotent.
	if err := tb.Define("x", 0x1000, 4); err != nil {
		t.Fatal(err)
	}
	if err := tb.Define("x", 0x2000, 4); !errors.Is(err, ErrDuplicateSymbol) {
		t.Fatalf("want ErrDuplicateSymbol, got %v", err)
	}
	if tb.DefineFirst("x", 0x3000, 4) {
		t.Fatal("DefineFirst replaced an existing symbol")
	}
	if addr, _ := tb.Resolve("x"); addr != 0x1000 {
		t.Fatalf("x = 0x%x", addr)
	}
	if !tb.DefineFirst("y", 0x4000, 4) {
		t.Fatal("DefineFirst failed on fresh symbol")
	}
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestAddExports(t *testing.T) {
	o := mustAssemble(t, "e.s", `
        .text
        .globl f
f:      halt
local:  nop
        .data
        .globl g
g:      .word 1
`)
	p, _ := Place(o, 0x30100000)
	tb := NewTable()
	if err := tb.AddExports(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Resolve("local"); ok {
		t.Fatal("local symbol exported")
	}
	if addr, ok := tb.Resolve("g"); !ok || addr != p.DataAddr() {
		t.Fatalf("g = 0x%x, %v", addr, ok)
	}
}

func TestBytesPatcherBounds(t *testing.T) {
	bp := &BytesPatcher{Base: 0x1000, B: make([]byte, 8)}
	if err := bp.StoreWord(0x1004, 1); err != nil {
		t.Fatal(err)
	}
	if err := bp.StoreWord(0x1008, 1); err == nil {
		t.Fatal("out-of-bounds store accepted")
	}
	if _, err := bp.LoadWord(0x0FFC); err == nil {
		t.Fatal("below-base load accepted")
	}
}

func TestGPRelocRejected(t *testing.T) {
	// A module that slips a GPREL16 reloc past the UsesGP flag is still
	// rejected at relocation time.
	o := &objfile.Object{
		Name:    "gp.o",
		Text:    make([]byte, 4),
		Symbols: []objfile.Symbol{{Name: "v", Section: objfile.SecData}},
		Data:    make([]byte, 4),
		Relocs:  []objfile.Reloc{{Section: objfile.SecText, Offset: 0, Sym: 0, Type: objfile.RelGPRel16}},
	}
	p, err := Place(o, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	img := p.Image()
	if _, err := p.RelocateInternal(&BytesPatcher{Base: 0x1000, B: img}); !errors.Is(err, ErrUsesGP) {
		t.Fatalf("want ErrUsesGP, got %v", err)
	}
}

func TestBranchRangeError(t *testing.T) {
	o := &objfile.Object{
		Name:    "br.o",
		Text:    make([]byte, 4),
		Symbols: []objfile.Symbol{{Name: "far", Section: objfile.SecUndef, Global: true}},
		Relocs:  []objfile.Reloc{{Section: objfile.SecText, Offset: 0, Sym: 0, Type: objfile.RelBranch16}},
	}
	p, _ := Place(o, 0x1000)
	img := p.Image()
	tb := NewTable()
	tb.Define("far", 0x30000000, 0)
	_, err := p.ApplyRelocs(nil, tb.Resolve, &BytesPatcher{Base: 0x1000, B: img})
	if !errors.Is(err, ErrBranchRange) {
		t.Fatalf("want ErrBranchRange, got %v", err)
	}
}

// Property: for any symbol address and addend, applying the HI16/LO16 pair
// to a lui/addiu sequence composes to exactly S+A, and WORD32 stores S+A
// verbatim.
func TestRelocationCompositionProperty(t *testing.T) {
	f := func(sym uint32, addend int16) bool {
		o := &objfile.Object{
			Name: "p.o",
			Text: make([]byte, 8),
			Data: make([]byte, 4),
			Symbols: []objfile.Symbol{
				{Name: "x", Section: objfile.SecUndef, Global: true},
			},
			Relocs: []objfile.Reloc{
				{Section: objfile.SecText, Offset: 0, Sym: 0, Type: objfile.RelHi16, Addend: int32(addend)},
				{Section: objfile.SecText, Offset: 4, Sym: 0, Type: objfile.RelLo16, Addend: int32(addend)},
				{Section: objfile.SecData, Offset: 0, Sym: 0, Type: objfile.RelWord32, Addend: int32(addend)},
			},
		}
		p, err := Place(o, 0x00400000)
		if err != nil {
			return false
		}
		img := p.Image()
		// Seed the instruction words so the patched immediates land in
		// real lui/addiu encodings.
		binary.BigEndian.PutUint32(img[0:], isa.EncodeI(isa.OpLUI, 8, 0, 0))
		binary.BigEndian.PutUint32(img[4:], isa.EncodeI(isa.OpADDIU, 8, 8, 0))
		tb := NewTable()
		tb.Define("x", sym, 0)
		left, err := p.ApplyRelocs(nil, tb.Resolve, &BytesPatcher{Base: 0x00400000, B: img})
		if err != nil || len(left) != 0 {
			return false
		}
		want := sym + uint32(int32(addend))
		hi := isa.Decode(binary.BigEndian.Uint32(img[0:])).Imm
		lo := isa.Decode(binary.BigEndian.Uint32(img[4:])).Imm
		if isa.ComposeHiLo(hi, lo) != want {
			return false
		}
		dataOff, _ := o.Layout()
		return binary.BigEndian.Uint32(img[dataOff:]) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
