package obsv

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// ---- ring buffer ------------------------------------------------------------

// Ring is a fixed-capacity in-memory sink: the flight recorder. When full
// it overwrites the oldest events and counts the overwritten ones.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int // index of the slot the next event lands in
	full    bool
	dropped uint64
}

// NewRing returns a ring holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Events returns the recorded events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len reports how many events are currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped reports how many events were overwritten by wraparound.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ---- JSON encoding helpers ---------------------------------------------------

// appendEventJSON hand-rolls the event object so field order is stable for
// golden files and zero-valued optional fields are omitted.
func appendEventJSON(b []byte, e Event) []byte {
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, e.TS, 10)
	b = append(b, `,"subsys":`...)
	b = strconv.AppendQuote(b, e.Subsys)
	b = append(b, `,"name":`...)
	b = strconv.AppendQuote(b, e.Name)
	b = append(b, `,"ph":"`...)
	b = append(b, byte(e.Phase))
	b = append(b, `","pid":`...)
	b = strconv.AppendInt(b, int64(e.PID), 10)
	if e.Mod != "" {
		b = append(b, `,"mod":`...)
		b = strconv.AppendQuote(b, e.Mod)
	}
	if e.Addr != 0 {
		b = append(b, `,"addr":"`...)
		b = appendHex32(b, e.Addr)
		b = append(b, '"')
	}
	if e.Val != 0 {
		b = append(b, `,"val":`...)
		b = strconv.AppendUint(b, e.Val, 10)
	}
	if e.Flow != 0 {
		b = append(b, `,"flow":`...)
		b = strconv.AppendUint(b, e.Flow, 10)
	}
	b = append(b, '}')
	return b
}

func appendHex32(b []byte, v uint32) []byte {
	const digits = "0123456789abcdef"
	b = append(b, '0', 'x')
	for shift := 28; shift >= 0; shift -= 4 {
		b = append(b, digits[(v>>uint(shift))&0xF])
	}
	return b
}

// ---- JSONL sink --------------------------------------------------------------

// JSONL writes one JSON object per line: the format `hemlock -trace
// out.jsonl` produces, trivially greppable and jq-able.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONL returns a JSONL sink writing to w. If w implements io.Closer it
// is closed by Close.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit implements Sink.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	var buf [192]byte
	line := appendEventJSON(buf[:0], e)
	line = append(line, '\n')
	_, j.err = j.w.Write(line)
}

// Close flushes buffered lines and closes the underlying writer if it is
// closable.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ferr := j.w.Flush(); j.err == nil {
		j.err = ferr
	}
	if j.c != nil {
		if cerr := j.c.Close(); j.err == nil {
			j.err = cerr
		}
	}
	return j.err
}

// ---- Chrome trace_event sink -------------------------------------------------

// ChromeTrace writes the Chrome/Perfetto trace_event JSON array format:
// load the file in chrome://tracing or ui.perfetto.dev for a visual
// timeline of syscalls, faults and lazy links. Timestamps are microseconds
// as the format requires; each Hemlock PID becomes a track.
type ChromeTrace struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	first bool
	done  bool
	err   error
}

// NewChromeTrace returns a sink writing the trace_event array to w. Close
// MUST be called to terminate the JSON array.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	t := &ChromeTrace{w: bufio.NewWriter(w), first: true}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Emit implements Sink.
func (t *ChromeTrace) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.done {
		return
	}
	var buf [256]byte
	b := buf[:0]
	if t.first {
		b = append(b, "[\n"...)
		t.first = false
	} else {
		b = append(b, ",\n"...)
	}
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, e.Name)
	b = append(b, `,"cat":`...)
	b = strconv.AppendQuote(b, e.Subsys)
	b = append(b, `,"ph":"`...)
	b = append(b, byte(e.Phase))
	if e.Phase == PhaseInstant {
		b = append(b, `","s":"t`...) // instant scope: thread
	}
	if e.Phase == PhaseFlowStart || e.Phase == PhaseFlowEnd {
		b = append(b, `","id":`...)
		b = strconv.AppendUint(b, e.Flow, 10)
		if e.Phase == PhaseFlowEnd {
			b = append(b, `,"bp":"e"`...) // bind to enclosing slice
		}
		b = append(b, `,"ts":`...)
		b = strconv.AppendInt(b, e.TS/1000, 10)
		b = append(b, `,"pid":`...)
		b = strconv.AppendInt(b, int64(e.PID), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(e.PID), 10)
		b = append(b, `,"args":{}}`...)
		_, t.err = t.w.Write(b)
		return
	}
	b = append(b, `","ts":`...)
	b = strconv.AppendInt(b, e.TS/1000, 10) // microseconds
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(e.PID), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(e.PID), 10)
	b = append(b, `,"args":{`...)
	comma := false
	if e.Mod != "" {
		b = append(b, `"mod":`...)
		b = strconv.AppendQuote(b, e.Mod)
		comma = true
	}
	if e.Addr != 0 {
		if comma {
			b = append(b, ',')
		}
		b = append(b, `"addr":"`...)
		b = appendHex32(b, e.Addr)
		b = append(b, '"')
		comma = true
	}
	if e.Val != 0 {
		if comma {
			b = append(b, ',')
		}
		b = append(b, `"val":`...)
		b = strconv.AppendUint(b, e.Val, 10)
	}
	b = append(b, "}}"...)
	_, t.err = t.w.Write(b)
}

// Meta writes a trace_event metadata record, naming the track for pid.
// Used by the fleet merger to label one track per machine.
func (t *ChromeTrace) Meta(name string, pid int, value string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.done {
		return
	}
	var buf [192]byte
	b := buf[:0]
	if t.first {
		b = append(b, "[\n"...)
		t.first = false
	} else {
		b = append(b, ",\n"...)
	}
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"args":{"name":`...)
	b = strconv.AppendQuote(b, value)
	b = append(b, "}}"...)
	_, t.err = t.w.Write(b)
}

// Close terminates the JSON array and flushes.
func (t *ChromeTrace) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.err
	}
	t.done = true
	if t.first {
		t.w.WriteString("[")
	}
	t.w.WriteString("\n]\n")
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.c != nil {
		if cerr := t.c.Close(); t.err == nil {
			t.err = cerr
		}
	}
	return t.err
}

// ---- text sink ---------------------------------------------------------------

// Text renders events as human-readable lines: the successor of the old
// `run -v` LD_DEBUG-style output, now fed by every subsystem.
type Text struct {
	mu sync.Mutex
	w  io.Writer
}

// NewText returns a text sink writing to w.
func NewText(w io.Writer) *Text { return &Text{w: w} }

// Emit implements Sink.
func (t *Text) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ph := ""
	switch e.Phase {
	case PhaseBegin:
		ph = " begin"
	case PhaseEnd:
		ph = " end"
	case PhaseFlowStart:
		ph = " flow_start"
	case PhaseFlowEnd:
		ph = " flow_end"
	}
	fmt.Fprintf(t.w, "%10dns %s: %s%s pid=%d", e.TS, e.Subsys, e.Name, ph, e.PID)
	if e.Mod != "" {
		fmt.Fprintf(t.w, " mod=%s", e.Mod)
	}
	if e.Addr != 0 {
		fmt.Fprintf(t.w, " addr=0x%08x", e.Addr)
	}
	if e.Val != 0 {
		fmt.Fprintf(t.w, " val=%d", e.Val)
	}
	fmt.Fprintln(t.w)
}
