package obsv

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Phase classifies an event, using Chrome trace_event letters: an instant
// event, or the begin/end pair bracketing a span.
type Phase byte

// Phases.
const (
	PhaseInstant   Phase = 'i'
	PhaseBegin     Phase = 'B'
	PhaseEnd       Phase = 'E'
	PhaseFlowStart Phase = 's'
	PhaseFlowEnd   Phase = 'f'
)

func (p Phase) String() string {
	switch p {
	case PhaseInstant:
		return "instant"
	case PhaseBegin:
		return "begin"
	case PhaseEnd:
		return "end"
	case PhaseFlowStart:
		return "flow_start"
	case PhaseFlowEnd:
		return "flow_end"
	}
	return "phase(?)"
}

// Event is one typed trace record. The fixed field set keeps emission
// allocation-free: subsystems fill in what applies and leave the rest
// zero. Mod carries a module/path/symbol name, Addr a simulated virtual
// address, Val a free numeric payload (a syscall number, a byte count, a
// reloc count).
type Event struct {
	TS     int64  // nanoseconds on the tracer's clock
	Subsys string // "kern", "vm", "addrspace", "ldl", "shmfs", "shalloc", "netshm"
	Name   string
	Phase  Phase
	PID    int
	Mod    string
	Addr   uint32
	Val    uint64
	Flow   uint64 // correlation id tying a PhaseFlowStart to its PhaseFlowEnd
}

// Sink receives events from a Tracer. Implementations must be safe for
// concurrent Emit calls.
type Sink interface {
	Emit(e Event)
}

// Tracer stamps events with its clock and fans them out to the attached
// sinks. With no sinks attached it is disabled: Emit returns after one
// atomic load. A nil *Tracer is valid and permanently disabled, so
// subsystems can carry one without wiring.
type Tracer struct {
	clock func() int64
	on    atomic.Bool
	mu    sync.Mutex
	sinks []Sink
}

// NewTracer returns a tracer using the given clock, in nanoseconds. A nil
// clock means monotonic wall time since the tracer's creation.
func NewTracer(clock func() int64) *Tracer {
	if clock == nil {
		start := time.Now()
		clock = func() int64 { return time.Since(start).Nanoseconds() }
	}
	return &Tracer{clock: clock}
}

// Enabled reports whether at least one sink is attached. It is the gate
// call sites use before building an Event.
func (t *Tracer) Enabled() bool {
	return t != nil && t.on.Load()
}

// Attach adds a sink and enables the tracer.
func (t *Tracer) Attach(s Sink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sinks = append(t.sinks, s)
	t.on.Store(true)
}

// Detach removes a previously attached sink, disabling the tracer when the
// last one goes.
func (t *Tracer) Detach(s Sink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, have := range t.sinks {
		if have == s {
			t.sinks = append(t.sinks[:i], t.sinks[i+1:]...)
			break
		}
	}
	if len(t.sinks) == 0 {
		t.on.Store(false)
	}
}

// Close closes every attached sink that implements io.Closer (flushing
// file formats like the Chrome exporter) and detaches them all.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sinks := t.sinks
	t.sinks = nil
	t.on.Store(false)
	t.mu.Unlock()
	var first error
	for _, s := range sinks {
		if c, ok := s.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Emit stamps e (if its TS is zero) and delivers it to every sink. It is a
// no-op on a disabled or nil tracer.
func (t *Tracer) Emit(e Event) {
	if !t.Enabled() {
		return
	}
	if e.TS == 0 {
		e.TS = t.clock()
	}
	if e.Phase == 0 {
		e.Phase = PhaseInstant
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// FlowID derives a stable correlation id for a causal flow (e.g. one
// netshm replication generation) from a name and a sequence number:
// FNV-1a of the name XORed with the sequence. Never zero, so sinks can
// treat Flow == 0 as "no flow".
func FlowID(name string, seq uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= seq
	if h == 0 {
		h = offset64
	}
	return h
}

// Span is an in-flight begin/end pair. The zero Span (from a disabled
// tracer) is valid and End is then a no-op, so call sites need no guards.
type Span struct {
	t      *Tracer
	subsys string
	name   string
	pid    int
	mod    string
}

// Begin emits a PhaseBegin event and returns the span handle whose End
// emits the matching PhaseEnd.
func (t *Tracer) Begin(subsys, name string, pid int, mod string) Span {
	if !t.Enabled() {
		return Span{}
	}
	t.Emit(Event{Subsys: subsys, Name: name, Phase: PhaseBegin, PID: pid, Mod: mod})
	return Span{t: t, subsys: subsys, name: name, pid: pid, mod: mod}
}

// End closes the span, attaching val as the end event's payload.
func (s Span) End(val uint64) {
	if s.t == nil {
		return
	}
	s.t.Emit(Event{Subsys: s.subsys, Name: s.name, Phase: PhaseEnd, PID: s.pid, Mod: s.mod, Val: val})
}
