package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// stepClock is the injectable deterministic clock: 1000, 2000, 3000, ...
func stepClock() func() int64 {
	var n int64
	return func() int64 {
		n += 1000
		return n
	}
}

func TestTracerEnableDisable(t *testing.T) {
	tr := NewTracer(stepClock())
	if tr.Enabled() {
		t.Fatal("tracer enabled with no sinks")
	}
	r := NewRing(8)
	tr.Attach(r)
	if !tr.Enabled() {
		t.Fatal("tracer disabled with a sink attached")
	}
	tr.Emit(Event{Subsys: "kern", Name: "a"})
	tr.Detach(r)
	if tr.Enabled() {
		t.Fatal("tracer enabled after last sink detached")
	}
	tr.Emit(Event{Subsys: "kern", Name: "b"})
	if got := r.Len(); got != 1 {
		t.Fatalf("ring has %d events, want 1 (emit after detach recorded?)", got)
	}
}

func TestTracerStampsAndDefaults(t *testing.T) {
	tr := NewTracer(stepClock())
	r := NewRing(8)
	tr.Attach(r)
	tr.Emit(Event{Subsys: "kern", Name: "a"})
	tr.Emit(Event{Subsys: "kern", Name: "b", TS: 77, Phase: PhaseBegin})
	evs := r.Events()
	if evs[0].TS != 1000 || evs[0].Phase != PhaseInstant {
		t.Fatalf("event 0 not stamped/defaulted: %+v", evs[0])
	}
	if evs[1].TS != 77 || evs[1].Phase != PhaseBegin {
		t.Fatalf("explicit TS/phase overwritten: %+v", evs[1])
	}
}

func TestSpan(t *testing.T) {
	tr := NewTracer(stepClock())
	r := NewRing(8)
	tr.Attach(r)
	sp := tr.Begin("kern", "run", 3, "m")
	sp.End(42)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("span emitted %d events, want 2", len(evs))
	}
	if evs[0].Phase != PhaseBegin || evs[1].Phase != PhaseEnd || evs[1].Val != 42 {
		t.Fatalf("span events wrong: %+v", evs)
	}
	if evs[0].PID != 3 || evs[1].Mod != "m" {
		t.Fatalf("span fields lost: %+v", evs)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{TS: int64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	evs := r.Events()
	for i, want := range []int64{3, 4, 5} {
		if evs[i].TS != want {
			t.Fatalf("events = %+v, want TS 3,4,5 oldest-first", evs)
		}
	}
}

// golden events exercised by both exporter tests.
func goldenEvents(tr *Tracer) {
	tr.Emit(Event{Subsys: "kern", Name: "getpid", PID: 1, Val: 3})
	tr.Emit(Event{Subsys: "ldl", Name: "lazy_link", PID: 1, Mod: "/lib/shared", Addr: 0x30900000, Val: 2})
	sp := tr.Begin("kern", "run", 1, "")
	sp.End(11)
}

func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(stepClock())
	sink := NewJSONL(&buf)
	tr.Attach(sink)
	goldenEvents(tr)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"ts":1000,"subsys":"kern","name":"getpid","ph":"i","pid":1,"val":3}
{"ts":2000,"subsys":"ldl","name":"lazy_link","ph":"i","pid":1,"mod":"/lib/shared","addr":"0x30900000","val":2}
{"ts":3000,"subsys":"kern","name":"run","ph":"B","pid":1}
{"ts":4000,"subsys":"kern","name":"run","ph":"E","pid":1,"val":11}
`
	if buf.String() != want {
		t.Fatalf("JSONL output:\n%s\nwant:\n%s", buf.String(), want)
	}
	// Every line must be valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(stepClock())
	sink := NewChromeTrace(&buf)
	tr.Attach(sink)
	goldenEvents(tr)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	want := `[
{"name":"getpid","cat":"kern","ph":"i","s":"t","ts":1,"pid":1,"tid":1,"args":{"val":3}},
{"name":"lazy_link","cat":"ldl","ph":"i","s":"t","ts":2,"pid":1,"tid":1,"args":{"mod":"/lib/shared","addr":"0x30900000","val":2}},
{"name":"run","cat":"kern","ph":"B","ts":3,"pid":1,"tid":1,"args":{}},
{"name":"run","cat":"kern","ph":"E","ts":4,"pid":1,"tid":1,"args":{"val":11}}
]
`
	if buf.String() != want {
		t.Fatalf("Chrome trace output:\n%s\nwant:\n%s", buf.String(), want)
	}
	var arr []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("not a valid JSON array: %v", err)
	}
	if len(arr) != 4 {
		t.Fatalf("array has %d entries, want 4", len(arr))
	}
}

func TestChromeTraceEmptyIsValid(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeTrace(&buf)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var arr []interface{}
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v (%q)", err, buf.String())
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(stepClock())
	tr.Attach(NewText(&buf))
	tr.Emit(Event{Subsys: "ldl", Name: "map_public", PID: 2, Mod: "/lib/x", Addr: 0x30000000, Val: 1})
	out := buf.String()
	for _, want := range []string{"ldl", "map_public", "pid=2", "mod=/lib/x", "addr=0x30000000", "val=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text line missing %q: %q", want, out)
		}
	}
}

// TestTracerConcurrency hammers one tracer from many goroutines while
// sinks attach and detach; run under -race this is the concurrency-safety
// proof for the fan-out path.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(nil)
	ring := NewRing(64)
	tr.Attach(ring)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			extra := NewRing(16)
			for i := 0; i < 500; i++ {
				tr.Emit(Event{Subsys: "kern", Name: "e", PID: w, Val: uint64(i)})
				switch i % 100 {
				case 10:
					tr.Attach(extra)
				case 20:
					tr.Detach(extra)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := ring.Len() + int(ring.Dropped()); got != 8*500 {
		t.Fatalf("ring saw %d events, want %d", got, 8*500)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Enabled() {
		t.Fatal("tracer enabled after Close")
	}
}
