package obsv

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("kern.syscalls")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("kern.syscalls") != c {
		t.Fatal("Counter lookup is not idempotent")
	}

	g := r.Gauge("mem.level")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if r.Gauge("mem.level") != g {
		t.Fatal("Gauge lookup is not idempotent")
	}

	h := r.Histogram("kern.run_steps")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 || s.Sum != 1010 {
		t.Fatalf("histogram count=%d sum=%d, want 6/1010", s.Count, s.Sum)
	}
	// Buckets: 0 -> le 0; 1 -> le 1; 2,3 -> le 3; 4 -> le 7; 1000 -> le 1023.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 1023: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	r.GaugeFunc("z", func() int64 { return 9 })
	var h *Histogram
	h.Observe(3)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}

	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.Emit(Event{Name: "x"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sp := tr.Begin("kern", "run", 1, "")
	sp.End(0)

	var o *Obs
	if o.Tracer() != nil || o.Registry() != nil {
		t.Fatal("nil Obs accessors not nil")
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Inc()
	r.Gauge("g.level").Set(-4)
	r.GaugeFunc("g.fn", func() int64 { return 12 })
	r.Histogram("h.steps").Observe(5)
	// An empty histogram must not appear in the snapshot.
	r.Histogram("h.empty")

	s := r.Snapshot()
	if s.Gauges["g.fn"] != 12 {
		t.Fatalf("gauge func not sampled: %+v", s.Gauges)
	}
	if _, ok := s.Histograms["h.empty"]; ok {
		t.Fatal("empty histogram in snapshot")
	}

	text := s.Text()
	ia, ib := strings.Index(text, "a.one"), strings.Index(text, "b.two")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("counters missing or unsorted:\n%s", text)
	}
	for _, want := range []string{"counters:", "gauges:", "histograms:", "g.level", "-4", "count=1 sum=5"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, text)
		}
	}

	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["b.two"] != 2 || back.Gauges["g.fn"] != 12 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared.count")
			g := r.Gauge("shared.level")
			h := r.Histogram("shared.hist")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared.count"] != workers*per {
		t.Fatalf("count = %d, want %d", s.Counters["shared.count"], workers*per)
	}
	if s.Gauges["shared.level"] != workers*per {
		t.Fatalf("level = %d, want %d", s.Gauges["shared.level"], workers*per)
	}
	if s.Histograms["shared.hist"].Count != workers*per {
		t.Fatalf("hist count = %d, want %d", s.Histograms["shared.hist"].Count, workers*per)
	}
}
