package obsv

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("kern.syscalls")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("kern.syscalls") != c {
		t.Fatal("Counter lookup is not idempotent")
	}

	g := r.Gauge("mem.level")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if r.Gauge("mem.level") != g {
		t.Fatal("Gauge lookup is not idempotent")
	}

	h := r.Histogram("kern.run_steps")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 || s.Sum != 1010 {
		t.Fatalf("histogram count=%d sum=%d, want 6/1010", s.Count, s.Sum)
	}
	// Buckets: 0 -> le 0; 1 -> le 1; 2,3 -> le 3; 4 -> le 7; 1000 -> le 1023.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 1023: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	r.GaugeFunc("z", func() int64 { return 9 })
	var h *Histogram
	h.Observe(3)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}

	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.Emit(Event{Name: "x"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sp := tr.Begin("kern", "run", 1, "")
	sp.End(0)

	var o *Obs
	if o.Tracer() != nil || o.Registry() != nil {
		t.Fatal("nil Obs accessors not nil")
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Inc()
	r.Gauge("g.level").Set(-4)
	r.GaugeFunc("g.fn", func() int64 { return 12 })
	r.Histogram("h.steps").Observe(5)
	// An empty histogram must not appear in the snapshot.
	r.Histogram("h.empty")

	s := r.Snapshot()
	if s.Gauges["g.fn"] != 12 {
		t.Fatalf("gauge func not sampled: %+v", s.Gauges)
	}
	if _, ok := s.Histograms["h.empty"]; ok {
		t.Fatal("empty histogram in snapshot")
	}

	text := s.Text()
	ia, ib := strings.Index(text, "a.one"), strings.Index(text, "b.two")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("counters missing or unsorted:\n%s", text)
	}
	for _, want := range []string{"counters:", "gauges:", "histograms:", "g.level", "-4", "count=1 sum=5"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, text)
		}
	}

	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["b.two"] != 2 || back.Gauges["g.fn"] != 12 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared.count")
			g := r.Gauge("shared.level")
			h := r.Histogram("shared.hist")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared.count"] != workers*per {
		t.Fatalf("count = %d, want %d", s.Counters["shared.count"], workers*per)
	}
	if s.Gauges["shared.level"] != workers*per {
		t.Fatalf("level = %d, want %d", s.Gauges["shared.level"], workers*per)
	}
	if s.Histograms["shared.hist"].Count != workers*per {
		t.Fatalf("hist count = %d, want %d", s.Histograms["shared.hist"].Count, workers*per)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("p.latency")
	// 100 observations 1..100: exact percentiles are 50, 95, 99. The
	// estimate interpolates inside power-of-two buckets, so allow the
	// bucket-granularity error but require the right neighborhood.
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["p.latency"]
	check := func(name string, got, exact uint64) {
		t.Helper()
		lo, hi := exact/2, exact*2
		if got < lo || got > hi {
			t.Fatalf("%s = %d, want within [%d,%d] of exact %d", name, got, lo, hi, exact)
		}
	}
	check("p50", s.P50, 50)
	check("p95", s.P95, 95)
	check("p99", s.P99, 99)
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Fatalf("percentiles not monotone: %d %d %d", s.P50, s.P95, s.P99)
	}

	// A single observation: every percentile lands in its bucket.
	r.Histogram("p.one").Observe(5)
	one := r.Snapshot().Histograms["p.one"]
	if one.P50 < 4 || one.P50 > 7 || one.P99 < 4 || one.P99 > 7 {
		t.Fatalf("single-sample percentiles: %+v", one)
	}

	// Zero observations: all-zero snapshot, no division by zero.
	var empty HistogramSnapshot
	if empty.P50 != 0 || empty.P95 != 0 || empty.P99 != 0 {
		t.Fatalf("empty percentiles: %+v", empty)
	}

	// The text rendering carries the percentiles; so does the JSON.
	text := r.Snapshot().Text()
	if !strings.Contains(text, "p50=") || !strings.Contains(text, "p99=") {
		t.Fatalf("text snapshot missing percentiles:\n%s", text)
	}
	b, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"p50"`, `"p95"`, `"p99"`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("JSON snapshot missing %s:\n%s", want, b)
		}
	}
}

func TestSpanDurationsSink(t *testing.T) {
	// A deterministic clock drives the tracer; the sink turns each B/E
	// pair into an observation of "subsys.name_ns" with no call-site
	// cooperation beyond the span itself.
	now := int64(0)
	tr := NewTracer(func() int64 { return now })
	r := NewRegistry()
	tr.Attach(NewSpanDurations(r))

	sp := tr.Begin("kern", "run", 1, "")
	now = 250
	sp.End(0)

	// Nested same-name spans pair innermost-first.
	outer := tr.Begin("ldl", "link", 2, "")
	now = 300
	inner := tr.Begin("ldl", "link", 2, "")
	now = 310
	inner.End(0)
	now = 400
	outer.End(0)

	// An unmatched End (sink attached mid-span) is tolerated.
	tr.Emit(Event{Subsys: "x", Name: "y", Phase: PhaseEnd, PID: 9})

	s := r.Snapshot()
	run := s.Histograms["kern.run_ns"]
	if run.Count != 1 || run.Sum != 250 {
		t.Fatalf("kern.run_ns = %+v", run)
	}
	link := s.Histograms["ldl.link_ns"]
	if link.Count != 2 || link.Sum != 10+150 {
		t.Fatalf("ldl.link_ns = %+v (want durations 10 and 150)", link)
	}
	if _, ok := s.Histograms["x.y_ns"]; ok {
		t.Fatal("unmatched End produced a histogram")
	}
}
