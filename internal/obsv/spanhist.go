package obsv

import "sync"

// SpanDurations is a sink that derives duration histograms from B/E event
// pairs: a span emitted as subsys "kern", name "run" feeds the registry
// histogram "kern.run_ns" with its nanosecond duration. Call sites need no
// changes — any span bracketed by the tracer is captured — and because
// this is an ordinary sink the zero-alloc disabled path of the tracer is
// untouched: when no sink is attached nothing here runs.
//
// Nesting of same-named spans within one PID is handled with a stack, so
// recursive or re-entrant spans pair innermost-first.
type SpanDurations struct {
	reg *Registry

	mu    sync.Mutex
	open  map[spanKey][]int64   // begin timestamps, innermost last
	hists map[string]*Histogram // "subsys.name_ns" → histogram, cached
}

type spanKey struct {
	subsys string
	name   string
	pid    int
}

// NewSpanDurations returns a sink feeding span durations into r.
func NewSpanDurations(r *Registry) *SpanDurations {
	return &SpanDurations{
		reg:   r,
		open:  map[spanKey][]int64{},
		hists: map[string]*Histogram{},
	}
}

// Emit implements Sink.
func (d *SpanDurations) Emit(e Event) {
	if e.Phase != PhaseBegin && e.Phase != PhaseEnd {
		return
	}
	k := spanKey{subsys: e.Subsys, name: e.Name, pid: e.PID}
	d.mu.Lock()
	defer d.mu.Unlock()
	if e.Phase == PhaseBegin {
		d.open[k] = append(d.open[k], e.TS)
		return
	}
	stack := d.open[k]
	if len(stack) == 0 {
		return // unmatched End: tolerate, e.g. sink attached mid-span
	}
	begin := stack[len(stack)-1]
	if len(stack) == 1 {
		delete(d.open, k)
	} else {
		d.open[k] = stack[:len(stack)-1]
	}
	name := e.Subsys + "." + e.Name + "_ns"
	h, ok := d.hists[name]
	if !ok {
		h = d.reg.Histogram(name)
		d.hists[name] = h
	}
	dur := e.TS - begin
	if dur < 0 {
		dur = 0
	}
	h.Observe(uint64(dur))
}
