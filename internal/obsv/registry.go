package obsv

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ---- instruments -------------------------------------------------------------

// Counter is a monotonically increasing atomic counter. All methods are
// nil-receiver-safe so unwired subsystems pay one branch and nothing else.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated signed level.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations in power-of-two buckets: bucket k
// counts values v with bit length k, i.e. 2^(k-1) <= v < 2^k (bucket 0
// counts zeros). Cheap, allocation-free, and plenty for step counts and
// byte sizes.
type Histogram struct {
	buckets [65]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is the exported state of a histogram. P50/P95/P99 are
// quantile estimates derived from the power-of-two buckets by linear
// interpolation inside the bucket that holds the quantile rank, so they
// carry the same coarse-but-free precision as the buckets themselves
// (within a factor of two of the true value, exact for single-valued
// buckets).
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	P50     uint64            `json:"p50"`
	P95     uint64            `json:"p95"`
	P99     uint64            `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one non-empty power-of-two bucket: Count observations
// with Le as their inclusive upper bound.
type HistogramBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for k := range h.buckets {
		n := h.buckets[k].Load()
		if n == 0 {
			continue
		}
		le := uint64(0)
		if k > 0 {
			if k >= 64 {
				le = ^uint64(0)
			} else {
				le = uint64(1)<<uint(k) - 1
			}
		}
		s.Buckets = append(s.Buckets, HistogramBucket{Le: le, Count: n})
	}
	s.P50 = s.quantile(0.50)
	s.P95 = s.quantile(0.95)
	s.P99 = s.quantile(0.99)
	return s
}

// quantile estimates the q-quantile from the bucket counts: walk to the
// bucket containing the rank, then interpolate linearly between the
// bucket's lower bound (half its Le range) and Le.
func (s HistogramSnapshot) quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if next >= rank {
			lo := uint64(0)
			if b.Le > 0 {
				lo = b.Le/2 + 1 // bucket k spans [2^(k-1), 2^k - 1]
			}
			if b.Le <= lo {
				return b.Le
			}
			frac := (rank - cum) / float64(b.Count)
			return lo + uint64(frac*float64(b.Le-lo))
		}
		cum = next
	}
	if n := len(s.Buckets); n > 0 {
		return s.Buckets[n-1].Le
	}
	return 0
}

// ---- registry ----------------------------------------------------------------

// Registry is a namespace of metrics. Instrument lookup is idempotent:
// asking for the same name returns the same instrument, so subsystems
// fetch handles once at wiring time and the hot path is a bare atomic.
// Names are dotted, "subsys.metric" ("kern.syscalls", "ldl.lazy_links").
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() int64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed. A nil registry
// returns a nil (valid, no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback sampled at snapshot time: the way an
// externally owned level (the physical frame pool) is surfaced without
// double bookkeeping. Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry. Gauge callbacks are sampled now. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}, Gauges: map[string]int64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range fns {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		hs := h.snapshot()
		if hs.Count == 0 {
			continue
		}
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramSnapshot{}
		}
		s.Histograms[k] = hs
	}
	return s
}

// Text renders the snapshot as sorted "name value" lines grouped by kind.
func (s Snapshot) Text() string {
	var b strings.Builder
	writeSorted := func(title string, lines []string) {
		if len(lines) == 0 {
			return
		}
		sort.Strings(lines)
		fmt.Fprintf(&b, "%s:\n", title)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	var cl []string
	for k, v := range s.Counters {
		cl = append(cl, fmt.Sprintf("  %-28s %d", k, v))
	}
	writeSorted("counters", cl)
	var gl []string
	for k, v := range s.Gauges {
		gl = append(gl, fmt.Sprintf("  %-28s %d", k, v))
	}
	writeSorted("gauges", gl)
	var hl []string
	for k, h := range s.Histograms {
		hl = append(hl, fmt.Sprintf("  %-28s count=%d sum=%d p50=%d p95=%d p99=%d",
			k, h.Count, h.Sum, h.P50, h.P95, h.P99))
	}
	writeSorted("histograms", hl)
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
