// Package obsv is Hemlock's unified observability layer: a structured
// event tracer and a metrics registry shared by every subsystem (kern, vm,
// addrspace, ldl, shmfs, shalloc, mem).
//
// The paper's whole value proposition is fault-driven lazy linking, and a
// lazy link is invisible unless something records it. obsv makes every
// interesting transition — a syscall, a fault, a map/unmap, a lazy link, a
// PLT patch, a segment creation — a typed Event flowing through a Tracer
// to pluggable sinks (an in-memory ring buffer, a JSONL stream, a Chrome
// trace_event file for visual timelines), and every interesting quantity a
// named Counter/Gauge/Histogram in a Registry with a snapshot API.
//
// Design constraints, in order:
//
//  1. Disabled tracing must cost (almost) nothing: one atomic load and no
//     allocations on the syscall hot path. Callers gate event construction
//     on Tracer.Enabled(); Events are passed by value; sinks preallocate.
//  2. Everything is safe for concurrent use: counters are atomics, the
//     tracer fans out under a short mutex, and all hot accessors are
//     nil-receiver-safe so partially-wired subsystems (a bare
//     addrspace.Space in a test) need no guards.
//  3. Time is injectable: a Tracer takes a clock so golden-file tests and
//     deterministic replays can stamp events reproducibly.
package obsv

// Obs bundles the tracer and registry one kernel instance shares with all
// of its subsystems.
type Obs struct {
	T *Tracer
	R *Registry
}

// New returns an Obs with a real-time tracer (no sinks attached, so
// tracing is disabled until one is) and an empty registry.
func New() *Obs {
	return &Obs{T: NewTracer(nil), R: NewRegistry()}
}

// Tracer returns the bundle's tracer; safe on a nil Obs.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.T
}

// Registry returns the bundle's registry; safe on a nil Obs.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.R
}
