// Package prof builds profiles on top of the obsv tracer and registry:
// a launch-phase profiler aggregating the phase-scoped spans the kernel
// and linkers emit, a guest-PC sampling profiler attributing retired
// instructions to module:function, and a merger producing one fleet-wide
// Chrome trace with causal flow arrows from the per-machine netshm
// tracers. It is the measurement substrate for the stable-linking and
// fleet-scaling work: the paper's launch cost (Table 1) is only worth
// attacking where the time demonstrably goes.
package prof

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hemlock/internal/obsv"
)

// LaunchRoot is the span that delimits one launch: spans nested inside a
// "kern"/"launch" pair are attributed to that launch's phase breakdown.
const (
	LaunchRootSubsys = "kern"
	LaunchRootName   = "launch"
)

// LaunchProfile is a sink that aggregates the phase-scoped spans emitted
// during process launch into a per-phase self-time breakdown. Attach it
// to the system tracer before Launch and read the Report after: self time
// (span duration minus nested spans) sums to the launch wall time, so
// coverage = 1 - root-self/total reports how much of the launch the named
// phases account for.
type LaunchProfile struct {
	mu       sync.Mutex
	stacks   map[int][]*openSpan // per PID, innermost last
	phases   map[string]*PhaseStat
	launches int
	total    int64 // summed root span durations, ns
	rootSelf int64 // launch time not inside any named phase, ns
}

type openSpan struct {
	key   string
	begin int64
	child int64 // summed durations of directly nested spans
}

// PhaseStat is the aggregate for one named phase across all launches.
type PhaseStat struct {
	Name  string
	Count int
	Total int64 // ns, including nested phases
	Self  int64 // ns, excluding nested phases
}

// NewLaunchProfile returns an empty launch profiler.
func NewLaunchProfile() *LaunchProfile {
	return &LaunchProfile{
		stacks: map[int][]*openSpan{},
		phases: map[string]*PhaseStat{},
	}
}

// Emit implements obsv.Sink. Only B/E events nested under the launch root
// are recorded; everything outside a launch is ignored.
func (p *LaunchProfile) Emit(e obsv.Event) {
	if e.Phase != obsv.PhaseBegin && e.Phase != obsv.PhaseEnd {
		return
	}
	key := e.Subsys + "." + e.Name
	root := e.Subsys == LaunchRootSubsys && e.Name == LaunchRootName
	p.mu.Lock()
	defer p.mu.Unlock()
	stack := p.stacks[e.PID]
	if e.Phase == obsv.PhaseBegin {
		if len(stack) == 0 && !root {
			return // span outside any launch
		}
		p.stacks[e.PID] = append(stack, &openSpan{key: key, begin: e.TS})
		return
	}
	if len(stack) == 0 {
		return
	}
	top := stack[len(stack)-1]
	if top.key != key {
		return // mismatched end (sink attached mid-span): drop
	}
	p.stacks[e.PID] = stack[:len(stack)-1]
	dur := e.TS - top.begin
	if dur < 0 {
		dur = 0
	}
	self := dur - top.child
	if self < 0 {
		self = 0
	}
	if len(stack) > 1 {
		stack[len(stack)-2].child += dur
	}
	if len(stack) == 1 { // the root itself closed
		p.launches++
		p.total += dur
		p.rootSelf += self
		return
	}
	ps, ok := p.phases[key]
	if !ok {
		ps = &PhaseStat{Name: key}
		p.phases[key] = ps
	}
	ps.Count++
	ps.Total += dur
	ps.Self += self
}

// LaunchReport is the aggregated result of one or more launches.
type LaunchReport struct {
	Launches int
	TotalNS  int64
	OtherNS  int64 // launch time not attributed to any named phase
	Phases   []PhaseStat
}

// Coverage reports the fraction of launch wall time attributed to named
// phases (1 means every nanosecond fell inside some phase span).
func (r LaunchReport) Coverage() float64 {
	if r.TotalNS == 0 {
		return 0
	}
	return 1 - float64(r.OtherNS)/float64(r.TotalNS)
}

// Report snapshots the profile, phases sorted by self time descending.
func (p *LaunchProfile) Report() LaunchReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := LaunchReport{Launches: p.launches, TotalNS: p.total, OtherNS: p.rootSelf}
	for _, ps := range p.phases {
		r.Phases = append(r.Phases, *ps)
	}
	sort.Slice(r.Phases, func(i, j int) bool {
		if r.Phases[i].Self != r.Phases[j].Self {
			return r.Phases[i].Self > r.Phases[j].Self
		}
		return r.Phases[i].Name < r.Phases[j].Name
	})
	return r
}

// Table renders the report as an aligned text table.
func (r LaunchReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "launches: %d  total: %s  attributed: %.1f%%\n",
		r.Launches, fmtNS(r.TotalNS), 100*r.Coverage())
	fmt.Fprintf(&b, "%-28s %8s %12s %12s %7s\n", "phase", "count", "total", "self", "self%")
	for _, ps := range r.Phases {
		pct := 0.0
		if r.TotalNS > 0 {
			pct = 100 * float64(ps.Self) / float64(r.TotalNS)
		}
		fmt.Fprintf(&b, "%-28s %8d %12s %12s %6.1f%%\n",
			ps.Name, ps.Count, fmtNS(ps.Total), fmtNS(ps.Self), pct)
	}
	if r.OtherNS > 0 {
		pct := 0.0
		if r.TotalNS > 0 {
			pct = 100 * float64(r.OtherNS) / float64(r.TotalNS)
		}
		fmt.Fprintf(&b, "%-28s %8s %12s %12s %6.1f%%\n",
			"(unattributed)", "", "", fmtNS(r.OtherNS), pct)
	}
	return b.String()
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}
