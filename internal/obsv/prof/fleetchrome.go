package prof

import (
	"io"
	"sort"

	"hemlock/internal/obsv"
)

// WriteFleetChrome merges the events of a fleet run — every machine's
// events stamped with that machine's fleet index as the event PID — into
// one Chrome trace_event file: one named track per machine, flow arrows
// (PhaseFlowStart/PhaseFlowEnd pairs sharing a Flow id) drawn across
// tracks for the write→push→apply replication path. Events are sorted by
// timestamp so the file is valid regardless of sink interleaving.
func WriteFleetChrome(w io.Writer, machines []string, events []obsv.Event) error {
	ct := obsv.NewChromeTrace(w)
	for i, name := range machines {
		ct.Meta("process_name", i, name)
	}
	sorted := append([]obsv.Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TS < sorted[j].TS })
	for _, e := range sorted {
		ct.Emit(e)
	}
	return ct.Close()
}
