package prof_test

import (
	"strings"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
	"hemlock/internal/obsv"
	"hemlock/internal/obsv/prof"
)

// ev builds one span event on the synthetic clock.
func ev(ts int64, subsys, name string, phase obsv.Phase, pid int) obsv.Event {
	return obsv.Event{TS: ts, Subsys: subsys, Name: name, Phase: phase, PID: pid}
}

func TestLaunchProfileSynthetic(t *testing.T) {
	lp := prof.NewLaunchProfile()
	seq := []obsv.Event{
		// Noise before any launch: ignored.
		ev(0, "kern", "exec", obsv.PhaseBegin, 1),
		ev(1, "kern", "exec", obsv.PhaseEnd, 1),
		ev(2, "kern", "spawn", obsv.PhaseInstant, 1),
		// One launch: root 100ns, exec 90 (30 self), map_pages 60.
		ev(10, "kern", "launch", obsv.PhaseBegin, 1),
		ev(15, "kern", "exec", obsv.PhaseBegin, 1),
		ev(20, "kern", "map_pages", obsv.PhaseBegin, 1),
		ev(80, "kern", "map_pages", obsv.PhaseEnd, 1),
		ev(105, "kern", "exec", obsv.PhaseEnd, 1),
		ev(110, "kern", "launch", obsv.PhaseEnd, 1),
	}
	for _, e := range seq {
		lp.Emit(e)
	}
	r := lp.Report()
	if r.Launches != 1 || r.TotalNS != 100 {
		t.Fatalf("launches=%d total=%d", r.Launches, r.TotalNS)
	}
	// Root self-time: 100 - 90 (exec) = 10ns unattributed.
	if r.OtherNS != 10 {
		t.Fatalf("other=%d, want 10", r.OtherNS)
	}
	if c := r.Coverage(); c < 0.89 || c > 0.91 {
		t.Fatalf("coverage=%f, want 0.90", c)
	}
	byName := map[string]prof.PhaseStat{}
	for _, p := range r.Phases {
		byName[p.Name] = p
	}
	if p := byName["kern.exec"]; p.Total != 90 || p.Self != 30 || p.Count != 1 {
		t.Fatalf("kern.exec = %+v", p)
	}
	if p := byName["kern.map_pages"]; p.Total != 60 || p.Self != 60 {
		t.Fatalf("kern.map_pages = %+v", p)
	}
	if !strings.Contains(r.Table(), "(unattributed)") {
		t.Fatalf("table missing unattributed row:\n%s", r.Table())
	}
}

func TestLaunchProfileInterleavedPIDs(t *testing.T) {
	// Two launches racing on different PIDs must not cross-attribute.
	lp := prof.NewLaunchProfile()
	for _, e := range []obsv.Event{
		ev(0, "kern", "launch", obsv.PhaseBegin, 1),
		ev(5, "kern", "launch", obsv.PhaseBegin, 2),
		ev(10, "kern", "exec", obsv.PhaseBegin, 1),
		ev(20, "kern", "exec", obsv.PhaseBegin, 2),
		ev(30, "kern", "exec", obsv.PhaseEnd, 1),
		ev(50, "kern", "exec", obsv.PhaseEnd, 2),
		ev(60, "kern", "launch", obsv.PhaseEnd, 1),
		ev(65, "kern", "launch", obsv.PhaseEnd, 2),
	} {
		lp.Emit(e)
	}
	r := lp.Report()
	if r.Launches != 2 || r.TotalNS != 120 {
		t.Fatalf("launches=%d total=%d", r.Launches, r.TotalNS)
	}
	var exec prof.PhaseStat
	for _, p := range r.Phases {
		if p.Name == "kern.exec" {
			exec = p
		}
	}
	if exec.Count != 2 || exec.Total != 50 { // 20 + 30
		t.Fatalf("kern.exec = %+v", exec)
	}
}

// TestLaunchProfileRealLaunch is the acceptance gate: profiling a real
// launch through the assembled system must attribute at least 95% of the
// wall time to named phases.
func TestLaunchProfileRealLaunch(t *testing.T) {
	s := core.NewSystem()
	// Profile the cold launch pipeline: with stable linking on, every
	// launch after the first is a ~10µs zygote clone whose only phase is
	// link.zygote_clone — a different (and separately tested) shape.
	s.SetStableLinking(false, false)
	if _, err := s.Asm("/lib/counter.o", `
        .data
        .globl  hits
hits:   .word   0
`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Asm("/bin/main.o", `
        .text
        .globl  main
        .extern hits
main:   la      $t0, hits
        lw      $v0, 0($t0)
        addiu   $v0, $v0, 1
        sw      $v0, 0($t0)
        jr      $ra
`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "counter.o", Class: objfile.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Launch-phase self times are wall-clock measurements, so an unlucky
	// scheduler preemption between two spans can land tens of µs in the
	// unattributed bucket of a single ~100µs launch. Aggregate a batch of
	// launches and allow a retry: instrumentation gaps are systematic and
	// would fail every attempt, while OS noise averages out.
	const launches = 10
	var r prof.LaunchReport
	for attempt := 0; ; attempt++ {
		lp := prof.NewLaunchProfile()
		s.Obs().T.Attach(lp)
		for i := 0; i < launches; i++ {
			pg, err := s.Launch(res.Image, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := pg.Run(100_000); err != nil {
				t.Fatal(err)
			}
		}
		s.Obs().T.Detach(lp)
		r = lp.Report()
		if r.Launches != launches {
			t.Fatalf("launches = %d, want %d", r.Launches, launches)
		}
		if r.TotalNS <= 0 {
			t.Fatalf("total = %dns", r.TotalNS)
		}
		if r.Coverage() >= 0.95 {
			break
		}
		if attempt == 3 {
			t.Fatalf("launch coverage %.1f%% < 95%% on every attempt:\n%s", 100*r.Coverage(), r.Table())
		}
	}
	byName := map[string]bool{}
	for _, p := range r.Phases {
		byName[p.Name] = true
	}
	for _, want := range []string{"kern.exec", "kern.map_pages", "ldl.start"} {
		if !byName[want] {
			t.Fatalf("no %s phase in:\n%s", want, r.Table())
		}
	}
}

// TestLaunchProfileStableLinkingPhases profiles launches with stable
// linking enabled: the cold launch must attribute its cache probe and
// zygote registration, and every repeat launch must show up as a
// link.zygote_clone — so `-profile launch` explains where warm launches
// spend their time, not just cold ones.
func TestLaunchProfileStableLinkingPhases(t *testing.T) {
	s := core.NewSystem()
	s.SetStableLinking(true, true)
	if _, err := s.Asm("/bin/solo.o", ".text\n.globl main\nmain: li $v0,3\n jr $ra\n"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Link(&lds.Options{
		Output:  "a.out",
		Modules: []lds.Input{{Name: "solo.o", Class: objfile.StaticPrivate}},
		LinkDir: "/bin",
	})
	if err != nil {
		t.Fatal(err)
	}
	const launches = 6 // 1 cold + 5 zygote clones
	lp := prof.NewLaunchProfile()
	s.Obs().T.Attach(lp)
	for i := 0; i < launches; i++ {
		pg, err := s.Launch(res.Image, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := pg.Run(100_000); err != nil {
			t.Fatal(err)
		}
	}
	s.Obs().T.Detach(lp)
	r := lp.Report()
	if r.Launches != launches {
		t.Fatalf("launches = %d, want %d", r.Launches, launches)
	}
	byName := map[string]prof.PhaseStat{}
	for _, p := range r.Phases {
		byName[p.Name] = p
	}
	// Cold-only phases ran exactly once: the other five launches skipped
	// exec and linking entirely.
	for _, want := range []string{"kern.exec", "link.cache_probe", "link.zygote_register"} {
		if p := byName[want]; p.Count != 1 {
			t.Fatalf("%s count = %d, want 1 (cold launch only):\n%s", want, p.Count, r.Table())
		}
	}
	clone := byName["link.zygote_clone"]
	if clone.Count != launches-1 {
		t.Fatalf("link.zygote_clone count = %d, want %d:\n%s", clone.Count, launches-1, r.Table())
	}
	if clone.Total <= 0 {
		t.Fatalf("link.zygote_clone total = %dns:\n%s", clone.Total, r.Table())
	}
	// A warm launch is a few µs of clone work under a kern.launch root, so
	// span bookkeeping is proportionally much larger than on a cold launch;
	// require attribution to carry most of the time, not the cold gate's 95%.
	if c := r.Coverage(); c < 0.5 {
		t.Fatalf("stable-linking launch coverage %.1f%% < 50%%:\n%s", 100*c, r.Table())
	}
}

// TestSpanDurationHistograms checks the no-call-site-changes satellite: the
// same launch spans, routed through the SpanDurations sink, surface as
// registry histograms under the derived "<subsys>.<name>_ns" names.
func TestSpanDurationHistograms(t *testing.T) {
	s := core.NewSystem()
	s.Obs().T.Attach(obsv.NewSpanDurations(s.Obs().R))
	if _, err := s.Asm("/bin/solo.o", ".text\n.globl main\nmain: li $v0,7\n jr $ra\n"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Link(&lds.Options{
		Output:  "a.out",
		Modules: []lds.Input{{Name: "solo.o", Class: objfile.StaticPrivate}},
		LinkDir: "/bin",
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(100_000); err != nil {
		t.Fatal(err)
	}
	snap := s.Obs().R.Snapshot()
	for _, want := range []string{"kern.launch_ns", "kern.exec_ns", "ldl.start_ns"} {
		h, ok := snap.Histograms[want]
		if !ok || h.Count == 0 {
			t.Fatalf("no %s histogram; have %v", want, keys(snap.Histograms))
		}
	}
	launch := snap.Histograms["kern.launch_ns"]
	if launch.Count != 1 {
		t.Fatalf("kern.launch_ns count = %d", launch.Count)
	}
	if launch.P95 < launch.P50 {
		t.Fatalf("p95 %d < p50 %d", launch.P95, launch.P50)
	}
}

func keys(m map[string]obsv.HistogramSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
