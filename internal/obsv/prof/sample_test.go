package prof_test

import (
	"strings"
	"testing"

	"hemlock/internal/objfile"
	"hemlock/internal/obsv/prof"
)

func TestGuestSamplerAttribution(t *testing.T) {
	g := prof.NewGuestSampler()
	// Boundary reports: 100 instructions at 0x1000, then 50 at 0x2000,
	// then a 25-instruction tail flushed at the final PC.
	g.Sample(0x1000, 0)
	g.Sample(0x2000, 100)
	g.Sample(0x1000, 150)
	g.Flush(0x3000, 175)
	if g.Total() != 175 {
		t.Fatalf("total = %d, want 175", g.Total())
	}

	sym := &prof.Symbolizer{}
	sym.AddModule("main", 0x1000, 0x1800, []objfile.ImageSym{
		{Name: "main", Addr: 0x1000},
	})
	sym.AddModule("libshared", 0x2000, 0x2800, []objfile.ImageSym{
		{Name: "helper", Addr: 0x2000},
	})
	top := g.TopN(sym, 10)
	if !strings.Contains(top, "main:main") || !strings.Contains(top, "libshared:helper") {
		t.Fatalf("TopN:\n%s", top)
	}
	// 125 of 175 instructions in main:main -> it leads the table.
	lines := strings.Split(strings.TrimSpace(top), "\n")
	if len(lines) < 3 || !strings.Contains(lines[1], "main:main") || !strings.Contains(lines[1], "125") {
		t.Fatalf("hottest row wrong:\n%s", top)
	}

	folded := g.Folded(sym)
	for _, want := range []string{"main;main 125", "libshared;helper 50"} {
		if !strings.Contains(folded, want) {
			t.Fatalf("folded missing %q:\n%s", want, folded)
		}
	}
}

func TestSamplerDecreasingStepsIgnored(t *testing.T) {
	// A CPU snapshot-restore can rewind Steps; the delta must be dropped,
	// not underflow.
	g := prof.NewGuestSampler()
	g.Sample(0x1000, 100)
	g.Sample(0x2000, 50)
	g.Sample(0x3000, 60)
	if g.Total() != 10 {
		t.Fatalf("total = %d, want 10", g.Total())
	}
}

func TestSymbolizerResolution(t *testing.T) {
	sym := &prof.Symbolizer{}
	sym.AddModule("app", 0x400000, 0x400100, []objfile.ImageSym{
		{Name: "main", Addr: 0x400010},
		{Name: "loop", Addr: 0x400040},
	})
	cases := []struct {
		pc      uint32
		mod, fn string
	}{
		{0x400010, "app", "main"},
		{0x40003C, "app", "main"},
		{0x400040, "app", "loop"},
		{0x4000FC, "app", "loop"},
		{0x400004, "app", "+0x4"},    // inside module, before first symbol
		{0x500000, "", "0x00500000"}, // outside every module
	}
	for _, c := range cases {
		mod, fn := sym.Resolve(c.pc)
		if mod != c.mod || fn != c.fn {
			t.Errorf("Resolve(%#x) = %q,%q want %q,%q", c.pc, mod, fn, c.mod, c.fn)
		}
	}
}
