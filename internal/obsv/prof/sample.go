package prof

import (
	"fmt"
	"sort"
	"strings"

	"hemlock/internal/objfile"
)

// GuestSampler implements vm.Sampler: at each block/batch boundary the
// interpreter reports the PC about to execute and the cumulative retired
// count, and the sampler attributes the instructions retired since the
// previous report to the previous PC — exact attribution at basic-block
// granularity, not statistical sampling. Not safe for concurrent use;
// install one per CPU.
type GuestSampler struct {
	counts    map[uint32]uint64
	lastPC    uint32
	lastSteps uint64
	primed    bool
	total     uint64
}

// NewGuestSampler returns an empty sampler.
func NewGuestSampler() *GuestSampler {
	return &GuestSampler{counts: map[uint32]uint64{}}
}

// Sample implements vm.Sampler.
func (g *GuestSampler) Sample(pc uint32, steps uint64) {
	if g.primed && steps > g.lastSteps {
		d := steps - g.lastSteps
		g.counts[g.lastPC] += d
		g.total += d
	}
	g.lastPC = pc
	g.lastSteps = steps
	g.primed = true
}

// Flush attributes the tail — instructions retired after the last
// boundary report — using the CPU's final PC and step count. Call it once
// after the run finishes.
func (g *GuestSampler) Flush(pc uint32, steps uint64) {
	g.Sample(pc, steps)
}

// Total returns the number of attributed instructions.
func (g *GuestSampler) Total() uint64 { return g.total }

// ---- symbolization ----------------------------------------------------------

// Module is one symbolization source: a named address range with its
// defined symbols.
type Module struct {
	Name string
	Lo   uint32
	Hi   uint32 // exclusive
	syms []objfile.ImageSym
}

// Symbolizer maps guest PCs to module:function names from whatever
// sources are registered: the program image (objfile.Image.Symbols), each
// ldl instance's exports, and symtab segment regions.
type Symbolizer struct {
	mods []Module
}

// AddModule registers a module covering [lo, hi) with the given symbols.
// Symbols outside the range are kept (they still resolve by address);
// order does not matter.
func (s *Symbolizer) AddModule(name string, lo, hi uint32, syms []objfile.ImageSym) {
	sorted := append([]objfile.ImageSym(nil), syms...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	s.mods = append(s.mods, Module{Name: name, Lo: lo, Hi: hi, syms: sorted})
	sort.Slice(s.mods, func(i, j int) bool { return s.mods[i].Lo < s.mods[j].Lo })
}

// Resolve maps pc to "module:function". Unknown PCs resolve to the bare
// hex address; PCs inside a module but before its first symbol resolve to
// "module:+0xoff".
func (s *Symbolizer) Resolve(pc uint32) (module, fn string) {
	for i := range s.mods {
		m := &s.mods[i]
		if pc < m.Lo || pc >= m.Hi {
			continue
		}
		// Greatest symbol with Addr <= pc.
		k := sort.Search(len(m.syms), func(j int) bool { return m.syms[j].Addr > pc })
		if k == 0 {
			return m.Name, fmt.Sprintf("+0x%x", pc-m.Lo)
		}
		return m.Name, m.syms[k-1].Name
	}
	return "", fmt.Sprintf("0x%08x", pc)
}

// ---- reports ----------------------------------------------------------------

type symCount struct {
	module string
	fn     string
	n      uint64
}

func (g *GuestSampler) bySymbol(sym *Symbolizer) []symCount {
	agg := map[[2]string]uint64{}
	for pc, n := range g.counts {
		m, f := sym.Resolve(pc)
		agg[[2]string{m, f}] += n
	}
	out := make([]symCount, 0, len(agg))
	for k, n := range agg {
		out = append(out, symCount{module: k[0], fn: k[1], n: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		if out[i].module != out[j].module {
			return out[i].module < out[j].module
		}
		return out[i].fn < out[j].fn
	})
	return out
}

// TopN renders the n hottest symbols as a text table.
func (g *GuestSampler) TopN(sym *Symbolizer, n int) string {
	rows := g.bySymbol(sym)
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %7s  %s\n", "instructions", "%", "symbol")
	for _, r := range rows {
		pct := 0.0
		if g.total > 0 {
			pct = 100 * float64(r.n) / float64(g.total)
		}
		name := r.fn
		if r.module != "" {
			name = r.module + ":" + r.fn
		}
		fmt.Fprintf(&b, "%12d %6.1f%%  %s\n", r.n, pct, name)
	}
	return b.String()
}

// Folded renders the profile in folded-stack format ("module;function
// count" per line, name-sorted), ready for flamegraph.pl or speedscope.
func (g *GuestSampler) Folded(sym *Symbolizer) string {
	rows := g.bySymbol(sym)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].module != rows[j].module {
			return rows[i].module < rows[j].module
		}
		return rows[i].fn < rows[j].fn
	})
	var b strings.Builder
	for _, r := range rows {
		mod := r.module
		if mod == "" {
			mod = "(unknown)"
		}
		fmt.Fprintf(&b, "%s;%s %d\n", mod, r.fn, r.n)
	}
	return b.String()
}
