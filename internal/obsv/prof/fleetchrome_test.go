package prof_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"hemlock/internal/obsv"
	"hemlock/internal/obsv/prof"
)

func TestWriteFleetChrome(t *testing.T) {
	flow := obsv.FlowID("/lib/seg", 2)
	events := []obsv.Event{
		{TS: 3000, Subsys: "netshm", Name: "apply", Phase: obsv.PhaseInstant, PID: 1, Mod: "/lib/seg"},
		{TS: 1000, Subsys: "netshm", Name: "write", Phase: obsv.PhaseInstant, PID: 0, Mod: "/lib/seg"},
		{TS: 1000, Subsys: "netshm", Name: "repl", Phase: obsv.PhaseFlowStart, PID: 0, Flow: flow},
		{TS: 3000, Subsys: "netshm", Name: "repl", Phase: obsv.PhaseFlowEnd, PID: 1, Flow: flow},
	}
	var buf bytes.Buffer
	if err := prof.WriteFleetChrome(&buf, []string{"vaxa", "vaxb"}, events); err != nil {
		t.Fatal(err)
	}

	var recs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, buf.String())
	}
	// One process_name metadata record per machine, naming its track.
	names := map[float64]string{}
	var flowPhases []string
	for _, r := range recs {
		switch r["ph"] {
		case "M":
			if r["name"] == "process_name" {
				args := r["args"].(map[string]any)
				names[r["pid"].(float64)] = args["name"].(string)
			}
		case "s", "f":
			flowPhases = append(flowPhases, r["ph"].(string))
			if r["id"].(float64) == 0 {
				t.Fatalf("flow event with zero id: %v", r)
			}
		}
	}
	if names[0] != "vaxa" || names[1] != "vaxb" {
		t.Fatalf("track names: %v", names)
	}
	// Events were fed out of order; the merged trace is TS-sorted, so the
	// start precedes the end.
	if len(flowPhases) != 2 || flowPhases[0] != "s" || flowPhases[1] != "f" {
		t.Fatalf("flow phases: %v", flowPhases)
	}
}
