package hemlock_test

import (
	"bytes"
	"testing"

	"hemlock"
)

// TestPublicAPISurface exercises the root package entry points end to end:
// build a module with the programmatic builder, link, run, save the
// machine, and reload it.
func TestPublicAPISurface(t *testing.T) {
	sys := hemlock.New()

	// A data module built without the assembler.
	obj, err := hemlock.NewBuilder("config.o").
		Word("cfg_version", 7, true).
		String("cfg_name", "hemlock", true).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTemplate("/lib/config.o", obj); err != nil {
		t.Fatal(err)
	}
	mustAsm(t, sys, "/bin/main.o", trivialMainSrc)
	res, err := sys.Link(&hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "config.o", Class: hemlock.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := sys.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pg.Var("cfg_version")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Store(8); err != nil {
		t.Fatal(err)
	}
	name, err := pg.Var("cfg_name")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := name.CString(0); s != "hemlock" {
		t.Fatalf("cfg_name = %q", s)
	}

	// Persist the whole machine and reboot it.
	if err := sys.SaveExecutable("/bin/a.out", res.Image); err != nil {
		t.Fatal(err)
	}
	var disk bytes.Buffer
	if err := sys.Save(&disk); err != nil {
		t.Fatal(err)
	}
	sys2, err := hemlock.Load(&disk)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := sys2.LoadExecutable("/bin/a.out")
	if err != nil {
		t.Fatal(err)
	}
	pg2, err := sys2.Launch(im2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := pg2.Var("cfg_version")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v2.Load(); got != 8 {
		t.Fatalf("after reboot cfg_version = %d, want 8", got)
	}
}

// TestClassConstantsRoundTrip pins the public class constants to their
// semantics.
func TestClassConstantsRoundTrip(t *testing.T) {
	if !hemlock.StaticPrivate.Static() || hemlock.StaticPrivate.Public() {
		t.Fatal("StaticPrivate misclassified")
	}
	if hemlock.DynamicPublic.Static() || !hemlock.DynamicPublic.Public() {
		t.Fatal("DynamicPublic misclassified")
	}
}
