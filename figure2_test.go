package hemlock_test

import (
	"testing"

	"hemlock"
)

// TestFigure2DAG reproduces Figure 2, "Hierarchical Inclusion of
// Dynamically-Linked Modules", with the paper's exact shape:
//
//	EXECUTABLE ── A.o (shared), B.o (private), C.o (private)
//	B.o ── D.o (private), E.o (shared)     [B's own list and path]
//	C.o ── E.o (shared), F.o (private)     [C's own list and path]
//	D.o ── G.o (private)
//	F.o ── G.o (private)
//
// The figure shows TWO E.o boxes and TWO G.o boxes: B's and C's "E.o" are
// genuinely different modules found along different search paths (the
// naming conflict scoped linking exists to defuse), and D's and F's G.o
// are separate private instances even when created from one template.
func TestFigure2DAG(t *testing.T) {
	s := newFigure2System(t)
	pg := launchFigure2(t, s)

	// B's chain: b_eptr -> (B's own) evalue.
	bv := mustVar(t, pg, "b_eptr")
	bE, err := bv.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	gotB, _ := bE.Load()
	if gotB != 111 {
		t.Fatalf("B bound to evalue=%d, want its own E (111)", gotB)
	}
	// C's chain: c_eptr -> (C's own) evalue — a DIFFERENT module that
	// happens to share the name E.o.
	cv := mustVar(t, pg, "c_eptr")
	cE, err := cv.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	gotC, _ := cE.Load()
	if gotC != 222 {
		t.Fatalf("C bound to evalue=%d, want its own E (222)", gotC)
	}
	if bE.Addr == cE.Addr {
		t.Fatal("the two E.o modules collapsed into one")
	}

	// D's and F's G.o are separate private instances.
	dg := mustVar(t, pg, "d_gptr")
	fg := mustVar(t, pg, "f_gptr")
	dG, err := dg.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	fG, err := fg.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	if dG.Addr == fG.Addr {
		t.Fatal("two private G.o instances share one address")
	}
	// Writes through one instance do not affect the other.
	if err := dG.Store(77); err != nil {
		t.Fatal(err)
	}
	vF, _ := fG.Load()
	if vF == 77 {
		t.Fatal("private instances alias")
	}
	// A.o, the root shared module, is visible to everyone.
	av := mustVar(t, pg, "a_val")
	if got, _ := av.Load(); got != 1 {
		t.Fatalf("a_val = %d", got)
	}
}

func newFigure2System(t *testing.T) *hemlock.System {
	t.Helper()
	s := hemlock.New()
	// The two distinct modules both named e.o.
	mustAsm(t, s, "/libB/e.o", ".data\n.globl evalue\nevalue: .word 111\n")
	mustAsm(t, s, "/libC/e.o", ".data\n.globl evalue\nevalue: .word 222\n")
	// One G template; D and F each instantiate it privately.
	mustAsm(t, s, "/lib/g.o", ".data\n.globl gval\ngval: .word 9\n")
	mustAsm(t, s, "/lib/a.o", ".data\n.globl a_val\na_val: .word 1\n")
	mustAsm(t, s, "/lib/d.o", `
        .dep    g.o, dynamic-private
        .searchpath /lib
        .data
        .globl  d_gptr
d_gptr: .word gval
`)
	mustAsm(t, s, "/lib/f.o", `
        .dep    g.o, dynamic-private
        .searchpath /lib
        .data
        .globl  f_gptr
f_gptr: .word gval
`)
	mustAsm(t, s, "/lib/b.o", `
        .dep    d.o, dynamic-private
        .dep    e.o, dynamic-public
        .searchpath /lib
        .searchpath /libB
        .data
        .globl  b_eptr
b_eptr: .word evalue
`)
	mustAsm(t, s, "/lib/c.o", `
        .dep    e.o, dynamic-public
        .dep    f.o, dynamic-private
        .searchpath /libC
        .searchpath /lib
        .data
        .globl  c_eptr
c_eptr: .word evalue
`)
	mustAsm(t, s, "/bin/main.o", trivialMainSrc)
	return s
}

func launchFigure2(t *testing.T, s *hemlock.System) *hemlock.Program {
	t.Helper()
	res, err := s.Link(&hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "a.o", Class: hemlock.DynamicPublic},
			{Name: "b.o", Class: hemlock.DynamicPrivate},
			{Name: "c.o", Class: hemlock.DynamicPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func mustVar(t *testing.T, pg *hemlock.Program, name string) *hemlock.Var {
	t.Helper()
	v, err := pg.Var(name)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}
