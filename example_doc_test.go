package hemlock_test

import (
	"fmt"
	"log"

	"hemlock"
)

// Example demonstrates the core workflow: define a shared variable in a
// module, link it into two programs, and watch writes cross application
// boundaries.
func Example() {
	sys := hemlock.New()
	sys.Asm("/lib/counter.o", `
        .data
        .globl  hits
hits:   .word   0
`)
	sys.Asm("/bin/main.o", `
        .text
        .globl  main
        .extern hits
main:   la      $t0, hits
        lw      $v0, 0($t0)
        addiu   $v0, $v0, 1
        sw      $v0, 0($t0)
        jr      $ra
`)
	res, err := sys.Link(&hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "counter.o", Class: hemlock.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pg, err := sys.Launch(res.Image, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := pg.Run(1_000_000); err != nil {
			log.Fatal(err)
		}
		fmt.Println("hits =", pg.P.ExitCode)
	}
	// Output:
	// hits = 1
	// hits = 2
	// hits = 3
}

// ExampleProgram_Var shows language-level access to a shared object from
// the host side: resolve by name, then load and store.
func ExampleProgram_Var() {
	sys := hemlock.New()
	sys.Asm("/lib/cfg.o", `
        .data
        .globl  retries
retries: .word  5
`)
	sys.Asm("/bin/main.o", `
        .text
        .globl  main
main:   li      $v0, 0
        jr      $ra
`)
	res, _ := sys.Link(&hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "cfg.o", Class: hemlock.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	pg, _ := sys.Launch(res.Image, 0, nil)
	v, err := pg.Var("retries")
	if err != nil {
		log.Fatal(err)
	}
	before, _ := v.Load()
	v.Store(8)
	after, _ := v.Load()
	fmt.Printf("retries: %d -> %d\n", before, after)
	// Output:
	// retries: 5 -> 8
}

// ExampleNewBuilder constructs a data module without the assembler.
func ExampleNewBuilder() {
	obj, err := hemlock.NewBuilder("table.o").
		Word("size", 3, true).
		Words("entries", []uint32{10, 20, 30}, true).
		Pointer("first", "entries", 0, true).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exports:", obj.Exports())
	// Output:
	// exports: [entries first size]
}
