package hemlock_test

// The benchmark harness: one benchmark (or paired benchmarks) per
// quantitative artifact in the paper. Absolute numbers come from the
// simulated substrate, not 1992 hardware — EXPERIMENTS.md records the
// SHAPE comparisons (who wins, by what factor) next to the paper's claims.
//
//	Table 1    BenchmarkTable1_*            link+launch cost per sharing class
//	Figure 1   BenchmarkFigure1Pipeline     full cc -> lds -> ldl pipeline
//	Figure 2   BenchmarkScopedLinkDepth*    scoped resolution vs DAG depth
//	E-rwho     BenchmarkRwho*               65-host status DB: shared vs files
//	E-presto   BenchmarkPrestoCompile*      post-processor cost vs plain compile
//	E-lynx     BenchmarkLynxTables*         recompile-tables vs attach-segment
//	E-xfig     BenchmarkXfig*               ASCII save/load vs segment attach
//	E-lazy     BenchmarkLinking*            lazy vs eager over a module graph
//	E-ptr      BenchmarkPointerChase*       mapped vs fault-mapped traversal
//	E-tramp    BenchmarkCall*               near call vs trampolined far call
//	E-fs       BenchmarkShmfs*              linear vs indexed addr lookup, boot scan
//	E-alloc    BenchmarkSegmentAlloc        per-segment heap allocator
//	E-msg      BenchmarkIPC*                shared-memory vs message-passing handoff

import (
	"fmt"
	"testing"

	"hemlock"
	"hemlock/internal/addrspace"
	"hemlock/internal/baseline"
	"hemlock/internal/core"
	"hemlock/internal/fig"
	"hemlock/internal/kern"
	"hemlock/internal/mem"
	"hemlock/internal/netshm"
	"hemlock/internal/netsim"
	"hemlock/internal/presto"
	"hemlock/internal/rwho"
	"hemlock/internal/shalloc"
	"hemlock/internal/shmfs"
	"hemlock/internal/svc"
	"hemlock/internal/symtab"
)

func mustAsmB(b *testing.B, s *hemlock.System, path, src string) {
	b.Helper()
	if _, err := s.Asm(path, src); err != nil {
		b.Fatal(err)
	}
}

func mustLink(b *testing.B, s *hemlock.System, opts *hemlock.LinkOptions) *hemlock.Image {
	b.Helper()
	res, err := s.Link(opts)
	if err != nil {
		b.Fatal(err)
	}
	return res.Image
}

func mustLaunch(b *testing.B, s *hemlock.System, im *hemlock.Image, env map[string]string) *hemlock.Program {
	b.Helper()
	pg, err := s.Launch(im, 0, env)
	if err != nil {
		b.Fatal(err)
	}
	return pg
}

// ---- Table 1: link + launch per sharing class -------------------------------------

func benchClassSetup(b *testing.B, class hemlock.Class) (*hemlock.System, *hemlock.LinkOptions) {
	s := hemlock.New()
	mustAsmB(b, s, "/lib/mod.o", counterModSrc)
	mustAsmB(b, s, "/bin/main.o", trivialMainSrc)
	opts := &hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "mod.o", Class: class},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	}
	return s, opts
}

// benchClass is the paper's Table 1 measurement: the full link+launch+run
// cost, every iteration cold. Stable linking is explicitly off — the warm
// path is measured separately by the *Repeat variants below.
func benchClass(b *testing.B, class hemlock.Class) {
	s, opts := benchClassSetup(b, class)
	s.SetStableLinking(false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im := mustLink(b, s, opts)
		pg := mustLaunch(b, s, im, nil)
		if err := pg.Run(100000); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClassRepeat is the stable-linking counterpart: link once, then
// measure steady-state repeat launches — every iteration is a content-hash
// cache hit satisfied by CoW-cloning the parked zygote template.
func benchClassRepeat(b *testing.B, class hemlock.Class) {
	s, opts := benchClassSetup(b, class)
	im := mustLink(b, s, opts)
	// One cold launch records the cache entry and parks the template.
	pg := mustLaunch(b, s, im, nil)
	if err := pg.Run(100000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := mustLaunch(b, s, im, nil)
		if err := pg.Run(100000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_StaticPrivate(b *testing.B)  { benchClass(b, hemlock.StaticPrivate) }
func BenchmarkTable1_DynamicPrivate(b *testing.B) { benchClass(b, hemlock.DynamicPrivate) }
func BenchmarkTable1_StaticPublic(b *testing.B)   { benchClass(b, hemlock.StaticPublic) }
func BenchmarkTable1_DynamicPublic(b *testing.B)  { benchClass(b, hemlock.DynamicPublic) }

func BenchmarkTable1_StaticPrivateRepeat(b *testing.B)  { benchClassRepeat(b, hemlock.StaticPrivate) }
func BenchmarkTable1_DynamicPrivateRepeat(b *testing.B) { benchClassRepeat(b, hemlock.DynamicPrivate) }
func BenchmarkTable1_StaticPublicRepeat(b *testing.B)   { benchClassRepeat(b, hemlock.StaticPublic) }
func BenchmarkTable1_DynamicPublicRepeat(b *testing.B)  { benchClassRepeat(b, hemlock.DynamicPublic) }

// BenchmarkLaunchWarm measures the link cache WITHOUT zygotes: each launch
// still execs and runs ldl Start, but symbol resolution collapses into a
// replay of the recorded patch words. This isolates the cache's own
// contribution from the CoW-clone shortcut.
func BenchmarkLaunchWarm(b *testing.B) {
	s, opts := benchClassSetup(b, hemlock.DynamicPublic)
	s.SetStableLinking(true, false)
	im := mustLink(b, s, opts)
	pg := mustLaunch(b, s, im, nil)
	if err := pg.Run(100000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := mustLaunch(b, s, im, nil)
		if err := pg.Run(100000); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 1: the whole build-and-share pipeline ---------------------------------

func BenchmarkFigure1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := hemlock.New()
		mustAsmB(b, s, "/project/shared1.o", counterModSrc)
		mustAsmB(b, s, "/project/prog1.o", incrementMainSrc)
		im := mustLink(b, s, &hemlock.LinkOptions{
			Output: "a.out",
			Modules: []hemlock.Module{
				{Name: "prog1.o", Class: hemlock.StaticPrivate},
				{Name: "shared1.o", Class: hemlock.DynamicPublic},
			},
			LinkDir: "/project",
		})
		pg := mustLaunch(b, s, im, nil)
		if err := pg.Run(100000); err != nil {
			b.Fatal(err)
		}
		if pg.P.ExitCode != 1 {
			b.Fatalf("exit = %d", pg.P.ExitCode)
		}
	}
}

// ---- Figure 2: scoped linking cost vs DAG depth ------------------------------------

// buildChain makes a chain of depth modules: chain0 -> chain1 -> ... Each
// module's data holds a pointer to the next module's value; the deepest
// exports the value itself. Each level has its own search directory so
// resolution walks the scope chain.
func buildChainSystem(b *testing.B, depth int) (*hemlock.System, *hemlock.Image) {
	s := hemlock.New()
	for i := 0; i < depth; i++ {
		dir := fmt.Sprintf("/lvl%d", i)
		var src string
		if i == depth-1 {
			src = fmt.Sprintf(".data\n.globl chainval%d\nchainval%d: .word %d\n", i, i, 1000+i)
		} else {
			src = fmt.Sprintf(`
        .dep    chain%d.o, dynamic-public
        .searchpath /lvl%d
        .data
        .globl  chainval%d
chainval%d: .word chainval%d
`, i+1, i+1, i, i, i+1)
		}
		mustAsmB(b, s, fmt.Sprintf("%s/chain%d.o", dir, i), src)
	}
	mustAsmB(b, s, "/bin/main.o", trivialMainSrc)
	im := mustLink(b, s, &hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "chain0.o", Class: hemlock.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lvl0"},
	})
	return s, im
}

func benchScopedDepth(b *testing.B, depth int) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, im := buildChainSystem(b, depth)
		pg := mustLaunch(b, s, im, nil)
		v, err := pg.Var("chainval0")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		// First touch lazily links the whole chain, one scope at a time.
		cur := v
		for d := 0; d < depth-1; d++ {
			next, err := cur.Follow(0)
			if err != nil {
				b.Fatal(err)
			}
			cur = next
		}
		got, err := cur.Load()
		if err != nil || got != uint32(1000+depth-1) {
			b.Fatalf("chain value = %d, %v", got, err)
		}
		b.StopTimer()
		pg.P.Exit(0)
		b.StartTimer()
	}
}

func BenchmarkScopedLinkDepth2(b *testing.B) { benchScopedDepth(b, 2) }
func BenchmarkScopedLinkDepth4(b *testing.B) { benchScopedDepth(b, 4) }
func BenchmarkScopedLinkDepth8(b *testing.B) { benchScopedDepth(b, 8) }

// ---- E-rwho: 65-host status database ------------------------------------------------

const rwhoHosts = 65

func rwhoSharedSetup(b *testing.B) *rwho.SharedDB {
	s := hemlock.New()
	im, err := rwho.Install(s, rwhoHosts)
	if err != nil {
		b.Fatal(err)
	}
	pg := mustLaunch(b, s, im, nil)
	db, err := rwho.Open(pg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rwhoHosts; i++ {
		if err := db.Update(rwho.SyntheticStatus(i, 1)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func rwhoFileSetup(b *testing.B) *rwho.FileDB {
	s := hemlock.New()
	db, err := rwho.NewFileDB(s.FS, "/var/rwho", 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rwhoHosts; i++ {
		if err := db.Update(rwho.SyntheticStatus(i, 1)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkRwhoQueryShared is one rwho invocation against the shared DB.
func BenchmarkRwhoQueryShared(b *testing.B) {
	db := rwhoSharedSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := db.Query()
		if err != nil || len(got) != rwhoHosts {
			b.Fatalf("%d records, %v", len(got), err)
		}
	}
}

// BenchmarkRwhoQueryFiles is one rwho invocation against per-host files.
func BenchmarkRwhoQueryFiles(b *testing.B) {
	db := rwhoFileSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := db.Query()
		if err != nil || len(got) != rwhoHosts {
			b.Fatalf("%d records, %v", len(got), err)
		}
	}
}

// BenchmarkRwhoUpdateShared is rwhod handling one status packet (shared).
func BenchmarkRwhoUpdateShared(b *testing.B) {
	db := rwhoSharedSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Update(rwho.SyntheticStatus(i%rwhoHosts, uint32(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRwhoUpdateFiles is rwhod handling one packet (file rewrite).
func BenchmarkRwhoUpdateFiles(b *testing.B) {
	db := rwhoFileSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Update(rwho.SyntheticStatus(i%rwhoHosts, uint32(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E-fleet: one rwhod round across a fleet of machines ----------------------------
//
// The three ways the status database crosses machine boundaries, each
// measured as one full propagation round on an 8-machine LAN: per-host
// spool files rewritten per packet (the original rwhod), raw broadcast
// into per-machine shared tables (PR-seed Machine fleet), and one
// netshm-replicated shared segment (the whod table as a genuinely
// distributed public module).

const fleetHosts = 8

// BenchmarkRwhoFiles: every machine broadcasts, every machine drains each
// packet into its spool directory — 8x8 file rewrites per round.
func BenchmarkRwhoFiles(b *testing.B) {
	net := netsim.New()
	ms := make([]*rwho.FileMachine, fleetHosts)
	for i := range ms {
		m, err := rwho.NewFileMachine(net, fmt.Sprintf("machine%02d", i), i)
		if err != nil {
			b.Fatal(err)
		}
		ms[i] = m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range ms {
			if err := m.Tick(uint32(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
		for _, m := range ms {
			if _, err := m.Drain(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRwhoBroadcast: every machine broadcasts, every machine folds
// packets into its own mapped table — in-place stores, but N private
// copies of the database.
func BenchmarkRwhoBroadcast(b *testing.B) {
	net := netsim.New()
	ms := make([]*rwho.Machine, fleetHosts)
	for i := range ms {
		m, err := rwho.NewMachine(net, fmt.Sprintf("machine%02d", i), i, fleetHosts)
		if err != nil {
			b.Fatal(err)
		}
		ms[i] = m
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range ms {
			if err := m.Tick(uint32(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
		for _, m := range ms {
			if _, err := m.Drain(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRwhoNetShm: statuses flow to the segment's home, which stores
// them once; netshm pushes the dirtied pages to every replica.
func BenchmarkRwhoNetShm(b *testing.B) {
	f, err := rwho.NewNetFleet(netsim.New(), fleetHosts, fleetHosts)
	if err != nil {
		b.Fatal(err)
	}
	totalTicks := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ticks, err := f.Round(uint32(i+1), 400)
		if err != nil {
			b.Fatal(err)
		}
		totalTicks += ticks
	}
	b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/round")
}

// BenchmarkNetShmPropagation: one page write converging across 8
// machines at increasing loss rates — the cost of the retry and
// anti-entropy machinery is the growth in virtual-clock ticks.
func BenchmarkNetShmPropagation(b *testing.B) {
	for _, lossPct := range []int{0, 10, 20, 30} {
		b.Run(fmt.Sprintf("loss=%d", lossPct), func(b *testing.B) {
			net := netsim.New()
			mod := uint64(lossPct)
			net.Drop = func(from, to string, seq uint64) bool {
				return mod > 0 && seq%10 < mod/10
			}
			f := netshm.NewFleet(net, netshm.Config{})
			for i := 0; i < fleetHosts; i++ {
				f.Add(fmt.Sprintf("m%d", i), hemlock.New())
			}
			home := f.Node("m0")
			if err := home.Publish("/lib/seg", make([]byte, 3*mem.PageSize)); err != nil {
				b.Fatal(err)
			}
			if _, ok := f.WaitConverged("/lib/seg", 400); !ok {
				b.Fatal("publish did not converge")
			}
			totalTicks := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := home.Write("/lib/seg", uint32(i%3)*mem.PageSize, []byte{byte(i)}); err != nil {
					b.Fatal(err)
				}
				ticks, ok := f.WaitConverged("/lib/seg", 400)
				if !ok {
					b.Fatal("write did not converge")
				}
				totalTicks += ticks
			}
			b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/write")
		})
	}
}

// BenchmarkNetShmScale: the fleet-scaling curve. One small (64-byte)
// write converging across 8 → 1024 machines at a fixed 20% loss rate;
// ticks/write is the propagation latency in virtual time, bytes/write the
// total wire traffic per converged write (delta encoding keeps it from
// scaling with page size; it still scales with fleet order).
func BenchmarkNetShmScale(b *testing.B) {
	for _, hosts := range []int{8, 64, 512, 1024} {
		b.Run(fmt.Sprintf("fleet=%d", hosts), func(b *testing.B) {
			net := netsim.New()
			net.Drop = func(from, to string, seq uint64) bool { return seq%10 < 2 }
			f := netshm.NewFleet(net, netshm.Config{})
			for i := 0; i < hosts; i++ {
				f.Add(fmt.Sprintf("m%04d", i), core.NewSystemLite())
			}
			home := f.Node("m0000")
			if err := home.Publish("/lib/seg", make([]byte, 3*mem.PageSize)); err != nil {
				b.Fatal(err)
			}
			if _, ok := f.WaitConverged("/lib/seg", 4000); !ok {
				b.Fatal("publish did not converge")
			}
			data := make([]byte, 64)
			totalTicks := 0
			startBytes := net.Stats().BytesSent
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data[0] = byte(i)
				if err := home.Write("/lib/seg", uint32(i%3)*mem.PageSize, data); err != nil {
					b.Fatal(err)
				}
				ticks, ok := f.WaitConverged("/lib/seg", 4000)
				if !ok {
					b.Fatal("write did not converge")
				}
				totalTicks += ticks
			}
			b.StopTimer()
			b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/write")
			b.ReportMetric(float64(net.Stats().BytesSent-startBytes)/float64(b.N), "bytes/write")
		})
	}
}

// BenchmarkNetShmDeltaBytes: wire bytes per converged small write with
// dirty-byte delta encoding on versus the full-page protocol. The
// benchcheck gate holds delta mode to ≤25% of full-page bytes — the
// efficiency the fleet-scale protocol depends on.
func BenchmarkNetShmDeltaBytes(b *testing.B) {
	for _, mode := range []string{"full", "delta"} {
		b.Run("mode="+mode, func(b *testing.B) {
			net := netsim.New()
			f := netshm.NewFleet(net, netshm.Config{FullPage: mode == "full"})
			for i := 0; i < fleetHosts; i++ {
				f.Add(fmt.Sprintf("m%d", i), core.NewSystemLite())
			}
			home := f.Node("m0")
			if err := home.Publish("/lib/seg", make([]byte, 3*mem.PageSize)); err != nil {
				b.Fatal(err)
			}
			if _, ok := f.WaitConverged("/lib/seg", 400); !ok {
				b.Fatal("publish did not converge")
			}
			data := make([]byte, 8)
			startBytes := net.Stats().BytesSent
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data[0] = byte(i)
				off := uint32(i%3)*mem.PageSize + uint32(i%317)
				if err := home.Write("/lib/seg", off, data); err != nil {
					b.Fatal(err)
				}
				if _, ok := f.WaitConverged("/lib/seg", 400); !ok {
					b.Fatal("write did not converge")
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(net.Stats().BytesSent-startBytes)/float64(b.N), "bytes/write")
		})
	}
}

// ---- E-presto: post-processor cost --------------------------------------------------

// prestoSource synthesises a worker source with many shared and private
// variables, large enough that compile time is measurable.
func prestoSource(vars int) (src string, shared []string) {
	var sb []byte
	sb = append(sb, []byte("        .text\n        .globl main\nmain:   jr $ra\n        .data\n")...)
	for i := 0; i < vars; i++ {
		name := fmt.Sprintf("shvar%d", i)
		shared = append(shared, name)
		sb = append(sb, []byte(fmt.Sprintf("%s:\n        .word %d, %d, %d\n", name, i, i*2, i*3))...)
		sb = append(sb, []byte(fmt.Sprintf("priv%d:\n        .space 16\n", i))...)
	}
	return string(sb), shared
}

// BenchmarkPrestoCompilePlain: compile (assemble) the unified source: the
// Hemlock path, where shared variables just live in a separate module.
func BenchmarkPrestoCompilePlain(b *testing.B) {
	src, _ := prestoSource(200)
	s := hemlock.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Asm("/bin/w.o", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrestoCompileWithPostProcessor: the baseline — run the assembly
// post-processor, then assemble both halves.
func BenchmarkPrestoCompileWithPostProcessor(b *testing.B) {
	src, shared := prestoSource(200)
	s := hemlock.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, shd, err := presto.PostProcess(src, shared)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Asm("/bin/w.o", prog); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Asm("/bin/wsh.o", shd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrestoSetupHemlock: the parent's whole Hemlock set-up dance —
// temp dir, symlink, env var — plus first-worker segment creation.
func BenchmarkPrestoSetupHemlock(b *testing.B) {
	s := hemlock.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, err := presto.Setup(s, fmt.Sprintf("bench%d", i), 4)
		if err != nil {
			b.Fatal(err)
		}
		w, err := app.StartWorker(0)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Add(1); err != nil {
			b.Fatal(err)
		}
		w.Program.P.Exit(0)
		if err := app.Cleanup(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E-smp: parallel speed-up on guest CPUs ------------------------------------------

// prestoParallelSrc is the compute kernel each parallel worker runs: burn
// a fixed loop, then fold one atomic increment into the shared counter
// segment (first touch lazily links the public module, exactly as the
// paper's parallel application would on its first shared-variable access).
const prestoParallelSrc = `
        .text
        .globl  main
main:   li      $t0, 150000
wloop:  addiu   $t0, $t0, -1
        bnez    $t0, wloop
        la      $a0, presto_counters
        li      $a1, 1
        li      $v0, 25         # atomic_add(&presto_counters[0], 1)
        syscall
        li      $v0, 0
        jr      $ra
`

// benchPrestoParallel measures one "parallel make": four warm-launched
// workers, each a CPU-bound guest, driven to completion by a scheduler
// with the given number of host CPUs. The 4-CPU/1-CPU ratio is the SMP
// speed-up benchcheck.sh gates (4 CPUs must be at least 2x 1 CPU).
func benchPrestoParallel(b *testing.B, cpus int) {
	s := hemlock.New()
	app, err := presto.SetupCompute(s, fmt.Sprintf("par%d", cpus), 4, prestoParallelSrc)
	if err != nil {
		b.Fatal(err)
	}
	sch := kern.NewScheduler(s.K, kern.SchedConfig{CPUs: cpus})
	defer sch.Stop()
	runOnce := func() {
		ps := make([]*kern.Process, 0, 4)
		for w := 0; w < 4; w++ {
			wk, err := app.StartWorker(w)
			if err != nil {
				b.Fatal(err)
			}
			ps = append(ps, wk.Program.P)
		}
		if err := sch.RunAll(ps, 20_000_000); err != nil {
			b.Fatal(err)
		}
		for _, p := range ps {
			if !p.Exited || p.ExitCode != 0 {
				b.Fatalf("worker pid %d: exited=%v code=%d", p.PID, p.Exited, p.ExitCode)
			}
		}
	}
	runOnce() // warm-up: cold link + zygote park happen off the clock
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
}

func BenchmarkPrestoParallel1CPU(b *testing.B) { benchPrestoParallel(b, 1) }
func BenchmarkPrestoParallel4CPU(b *testing.B) { benchPrestoParallel(b, 4) }

// ---- E-lynx: compiler tables across passes -------------------------------------------

const (
	lynxStates = 120
	lynxSyms   = 48
)

// BenchmarkLynxTablesRecompile: per compiler build, the baseline
// regenerates the C source and "compiles" (parses) it back.
func BenchmarkLynxTablesRecompile(b *testing.B) {
	tbl := symtab.Generate(lynxStates, lynxSyms, 7)
	stream := tbl.Stream(256, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := symtab.GenerateCSource(tbl)
		got, err := symtab.CompileCSource(src)
		if err != nil {
			b.Fatal(err)
		}
		got.Run(stream)
	}
}

// BenchmarkLynxTablesShared: per compiler run, the Hemlock path just
// attaches to the persistent segment the utility wrote once.
func BenchmarkLynxTablesShared(b *testing.B) {
	tbl := symtab.Generate(lynxStates, lynxSyms, 7)
	stream := tbl.Stream(256, 3)
	as := addrspace.New(mem.NewPhysical(0))
	base := uint32(0x30200000)
	if err := as.MapAnon(base, 1<<20, addrspace.ProtRW); err != nil {
		b.Fatal(err)
	}
	if _, err := symtab.WriteSegment(as, base, 1<<20, tbl); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := symtab.AttachSegment(as, base)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Run(stream); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E-xfig: figure save/load -------------------------------------------------------

const xfigShapes = 400

// BenchmarkXfigSaveLoadASCII: translate to ASCII, write, read, parse.
func BenchmarkXfigSaveLoadASCII(b *testing.B) {
	s := hemlock.New()
	s.FS.MkdirAll("/figs", shmfs.DefaultDirMode, 0)
	shapes := make([]fig.Shape, xfigShapes)
	for i := range shapes {
		shapes[i] = fig.SyntheticShape(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fig.SaveASCII(s.FS, "/figs/bench.fig", shapes, 0); err != nil {
			b.Fatal(err)
		}
		got, err := fig.LoadASCII(s.FS, "/figs/bench.fig", 0)
		if err != nil || len(got) != xfigShapes {
			b.Fatalf("%d shapes, %v", len(got), err)
		}
	}
}

// BenchmarkXfigSegmentReopen: the Hemlock path — "save" is free; reopening
// a figure is attach + walk.
func BenchmarkXfigSegmentReopen(b *testing.B) {
	as := addrspace.New(mem.NewPhysical(0))
	base := uint32(0x30300000)
	if err := as.MapAnon(base, 1<<20, addrspace.ProtRW); err != nil {
		b.Fatal(err)
	}
	f, err := fig.Create(as, base, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < xfigShapes; i++ {
		if err := f.Add(fig.SyntheticShape(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := fig.Attach(as, base)
		if err != nil {
			b.Fatal(err)
		}
		got, err := g.Shapes()
		if err != nil || len(got) != xfigShapes {
			b.Fatalf("%d shapes, %v", len(got), err)
		}
	}
}

// BenchmarkXfigDuplicate: the in-editor copy that shares code with the
// segment representation.
func BenchmarkXfigDuplicate(b *testing.B) {
	as := addrspace.New(mem.NewPhysical(0))
	base := uint32(0x30300000)
	as.MapAnon(base, 8<<20, addrspace.ProtRW)
	f, err := fig.Create(as, base, 8<<20)
	if err != nil {
		b.Fatal(err)
	}
	f.Add(fig.SyntheticShape(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Duplicate(0); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := f.Remove(0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// ---- E-lazy: lazy vs eager linking over a module graph --------------------------------

const graphModules = 24

// buildGraphSystem creates graphModules independent dynamic public
// modules, each with one undefined reference satisfied by a companion on
// its own module list (so every module needs a link step).
func buildGraphSystem(b *testing.B) (*hemlock.System, *hemlock.Image) {
	s := hemlock.New()
	var inputs []hemlock.Module
	for i := 0; i < graphModules; i++ {
		mustAsmB(b, s, fmt.Sprintf("/lib/leaf%d.o", i),
			fmt.Sprintf(".data\n.globl leafval%d\nleafval%d: .word %d\n", i, i, i))
		mustAsmB(b, s, fmt.Sprintf("/lib/g%d.o", i), fmt.Sprintf(`
        .dep    leaf%d.o, dynamic-public
        .searchpath /lib
        .data
        .globl  gptr%d
gptr%d: .word leafval%d
`, i, i, i, i))
		inputs = append(inputs, hemlock.Module{Name: fmt.Sprintf("g%d.o", i), Class: hemlock.DynamicPublic})
	}
	mustAsmB(b, s, "/bin/main.o", trivialMainSrc)
	im := mustLink(b, s, &hemlock.LinkOptions{
		Output:      "a.out",
		Modules:     append([]hemlock.Module{{Name: "main.o", Class: hemlock.StaticPrivate}}, inputs...),
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	return s, im
}

// touchModules dereferences the first `use` modules, forcing their links.
func touchModules(b *testing.B, pg *hemlock.Program, use int) {
	for i := 0; i < use; i++ {
		v, err := pg.Var(fmt.Sprintf("gptr%d", i))
		if err != nil {
			b.Fatal(err)
		}
		ptr, err := v.Load()
		if err != nil {
			b.Fatal(err)
		}
		leaf := pg.VarAt("", ptr)
		if got, _ := leaf.Load(); got != uint32(i) {
			b.Fatalf("leaf %d = %d", i, got)
		}
	}
}

func benchLinking(b *testing.B, use int) {
	s, im := buildGraphSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Cold start: discard kernel-resident link state so every
		// iteration pays the real linking cost for what it touches.
		s.ResetWorld()
		b.StartTimer()
		pg := mustLaunch(b, s, im, nil)
		touchModules(b, pg, use)
		b.StopTimer()
		pg.P.Exit(0)
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(use), "modules-linked/op")
}

// BenchmarkLinkingLazyUse1: launch + touch 1 of 24 modules. Lazy linking
// pays only for what is used.
func BenchmarkLinkingLazyUse1(b *testing.B) { benchLinking(b, 1) }

// BenchmarkLinkingLazyUse6: launch + touch 6 of 24.
func BenchmarkLinkingLazyUse6(b *testing.B) { benchLinking(b, 6) }

// BenchmarkLinkingEagerAll: launch + touch all 24: what an eager,
// resolve-at-load linker pays on every start regardless of use.
func BenchmarkLinkingEagerAll(b *testing.B) { benchLinking(b, graphModules) }

// ---- E-ptr: pointer chase into unmapped segments ---------------------------------------

const chaseSegments = 12

// buildChaseSystem creates a linked list spanning chaseSegments raw shared
// files and returns the head's address.
func buildChaseSystem(b *testing.B) (*hemlock.System, *hemlock.Image, uint32) {
	s := hemlock.New()
	s.FS.MkdirAll("/chase", shmfs.DefaultDirMode, 0)
	addrs := make([]uint32, chaseSegments)
	for i := 0; i < chaseSegments; i++ {
		p := fmt.Sprintf("/chase/node%d", i)
		if _, err := s.FS.Create(p, shmfs.DefaultFileMode, 0); err != nil {
			b.Fatal(err)
		}
		addrs[i], _ = s.FS.PathToAddr(p)
	}
	for i := 0; i < chaseSegments; i++ {
		next := uint32(0)
		if i+1 < chaseSegments {
			next = addrs[i+1]
		}
		buf := []byte{
			byte(next >> 24), byte(next >> 16), byte(next >> 8), byte(next),
			0, 0, 0, byte(i),
		}
		p := fmt.Sprintf("/chase/node%d", i)
		if _, err := s.FS.WriteAt(p, 0, buf, 0); err != nil {
			b.Fatal(err)
		}
	}
	mustAsmB(b, s, "/bin/main.o", trivialMainSrc)
	im := mustLink(b, s, &hemlock.LinkOptions{
		Output:  "a.out",
		Modules: []hemlock.Module{{Name: "main.o", Class: hemlock.StaticPrivate}},
		LinkDir: "/bin",
	})
	return s, im, addrs[0]
}

func chase(b *testing.B, pg *hemlock.Program, head uint32) {
	cur := pg.VarAt("head", head)
	sum := uint32(0)
	for {
		v, err := cur.LoadAt(4)
		if err != nil {
			b.Fatal(err)
		}
		sum += v
		next, err := cur.Load()
		if err != nil {
			b.Fatal(err)
		}
		if next == 0 {
			break
		}
		cur = pg.VarAt("", next)
	}
	if sum != chaseSegments*(chaseSegments-1)/2 {
		b.Fatalf("sum = %d", sum)
	}
}

// BenchmarkPointerChaseFaultMap: a fresh process follows the list; every
// segment is mapped by the fault handler on first dereference.
func BenchmarkPointerChaseFaultMap(b *testing.B) {
	s, im, head := buildChaseSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := mustLaunch(b, s, im, nil)
		chase(b, pg, head)
		b.StopTimer()
		pg.P.Exit(0)
		b.StartTimer()
	}
}

// BenchmarkPointerChaseMapped: the same traversal once all segments are
// already mapped (the steady state).
func BenchmarkPointerChaseMapped(b *testing.B) {
	s, im, head := buildChaseSystem(b)
	pg := mustLaunch(b, s, im, nil)
	chase(b, pg, head) // warm: map everything
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chase(b, pg, head)
	}
}

// ---- E-tramp: trampoline overhead on calls -----------------------------------------------

// callLoopImage builds a program whose main calls `target` 1000 times.
// With a near target the calls are direct JALs; with a far (shared-region)
// target every call goes through a linker trampoline; with jump tables the
// call goes through a PLT stub patched on first use.
func callLoopImage(b *testing.B, far bool, jumpTables bool) (*hemlock.System, *hemlock.Image) {
	s := hemlock.New()
	fn := `
        .text
        .globl  bench_fn
bench_fn:
        jr      $ra
`
	class := hemlock.StaticPrivate
	if far {
		class = hemlock.DynamicPublic
	}
	mustAsmB(b, s, "/lib/fn.o", fn)
	mustAsmB(b, s, "/bin/main.o", `
        .text
        .globl  main
        .extern bench_fn
main:   li      $t0, 1000
        move    $s1, $ra
loop:   jal     bench_fn
        addiu   $t0, $t0, -1
        bgtz    $t0, loop
        move    $ra, $s1
        li      $v0, 0
        jr      $ra
`)
	im := mustLink(b, s, &hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "fn.o", Class: class},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
		JumpTables:  jumpTables,
	})
	return s, im
}

func benchCalls(b *testing.B, far bool, jumpTables bool) {
	s, im := callLoopImage(b, far, jumpTables)
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		pg := mustLaunch(b, s, im, nil)
		if err := pg.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
		steps = pg.P.CPU.Steps
	}
	b.ReportMetric(float64(steps)/1000.0, "instrs/call")
}

// BenchmarkCallNear: 1000 direct calls within the private text region.
func BenchmarkCallNear(b *testing.B) { benchCalls(b, false, false) }

// BenchmarkCallFarTrampoline: 1000 calls into a shared-segment function,
// each routed through the linker's trampoline fragment (resolved eagerly
// at start-up).
func BenchmarkCallFarTrampoline(b *testing.B) { benchCalls(b, true, false) }

// BenchmarkCallFarPLT: the SunOS-style jump-table ablation — the first
// call traps and patches the stub; the remaining 999 run through it.
func BenchmarkCallFarPLT(b *testing.B) { benchCalls(b, true, true) }

// ---- E-plt: start-up cost of eager vs jump-table call resolution --------------------------

// startupImage links a main with nCalls calls to distinct functions in one
// shared module.
func startupImage(b *testing.B, jumpTables bool, nCalls int) (*hemlock.System, *hemlock.Image) {
	s := hemlock.New()
	var lib, main string
	lib = "        .text\n"
	main = "        .text\n        .globl main\nmain:\n"
	for i := 0; i < nCalls; i++ {
		lib += fmt.Sprintf("        .globl fn%d\nfn%d: jr $ra\n", i, i)
		main += fmt.Sprintf("        .extern fn%d\n", i)
		// Reference each function once; the program returns before
		// actually calling any of them, so start-up cost is what differs.
		main += fmt.Sprintf("        b skip%d\n        jal fn%d\nskip%d:\n", i, i, i)
	}
	main += "        li $v0, 0\n        jr $ra\n"
	mustAsmB(b, s, "/lib/fns.o", lib)
	mustAsmB(b, s, "/bin/main.o", main)
	im := mustLink(b, s, &hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "fns.o", Class: hemlock.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
		JumpTables:  jumpTables,
	})
	return s, im
}

func benchStartup(b *testing.B, jumpTables bool) {
	s, im := startupImage(b, jumpTables, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := mustLaunch(b, s, im, nil)
		if err := pg.Run(100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStartupEagerCalls: 50 never-executed calls resolved at launch.
func BenchmarkStartupEagerCalls(b *testing.B) { benchStartup(b, false) }

// BenchmarkStartupJumpTables: the same 50 calls deferred behind stubs;
// launch resolves none of them.
func BenchmarkStartupJumpTables(b *testing.B) { benchStartup(b, true) }

// ---- E-fs: address lookup and boot scan ----------------------------------------------

func fullFS(b *testing.B) *shmfs.FS {
	fs, err := shmfs.New(mem.NewPhysical(0))
	if err != nil {
		b.Fatal(err)
	}
	fs.MkdirAll("/lib", shmfs.DefaultDirMode, 0)
	for i := 0; i < shmfs.NumInodes-2; i++ {
		if _, err := fs.Create(fmt.Sprintf("/lib/f%04d", i), shmfs.DefaultFileMode, 0); err != nil {
			b.Fatal(err)
		}
	}
	return fs
}

// BenchmarkShmfsAddrToPathLinear: the paper's linear lookup table, worst
// case (last file), with the file system nearly full.
func BenchmarkShmfsAddrToPathLinear(b *testing.B) {
	benchLookup(b, shmfs.LookupLinear)
}

// BenchmarkShmfsAddrToPathIndexed: ablation 1 — direct slot indexing
// (available only while the 32-bit layout keeps slots dense).
func BenchmarkShmfsAddrToPathIndexed(b *testing.B) {
	benchLookup(b, shmfs.LookupIndexed)
}

// BenchmarkShmfsAddrToPathBTree: ablation 2 — the address-keyed B-tree the
// paper plans for 64-bit machines.
func BenchmarkShmfsAddrToPathBTree(b *testing.B) {
	benchLookup(b, shmfs.LookupBTree)
}

func benchLookup(b *testing.B, mode shmfs.LookupMode) {
	fs := fullFS(b)
	fs.Lookup = mode
	addr := shmfs.AddrOf(shmfs.NumInodes-2) + 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fs.AddrToPath(addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShmfsBootScan: rebuilding the table by scanning the entire file
// system, as the kernel does at boot.
func BenchmarkShmfsBootScan(b *testing.B) {
	fs := fullFS(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.ClearTable()
		if n := fs.BootScan(); n != shmfs.NumInodes-2 {
			b.Fatalf("scan found %d", n)
		}
	}
}

// ---- E-alloc: per-segment heap allocator ------------------------------------------------

func BenchmarkSegmentAlloc(b *testing.B) {
	as := addrspace.New(mem.NewPhysical(0))
	base := uint32(0x30400000)
	as.MapAnon(base, 1<<20, addrspace.ProtRW)
	h, err := shalloc.Init(as, base, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := h.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(a); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E-msg: shared memory vs message passing handoff -------------------------------------

// BenchmarkIPCSharedMemory: producer stores a record into a shared
// segment; consumer loads it. No translation, no copies.
func BenchmarkIPCSharedMemory(b *testing.B) {
	s := hemlock.New()
	mustAsmB(b, s, "/lib/box.o", ".data\n.globl box\nbox: .space 64\n")
	mustAsmB(b, s, "/bin/main.o", trivialMainSrc)
	im := mustLink(b, s, &hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "box.o", Class: hemlock.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	prod := mustLaunch(b, s, im, nil)
	cons := mustLaunch(b, s, im, nil)
	pv, err := prod.Var("box")
	if err != nil {
		b.Fatal(err)
	}
	cv, err := cons.Var("box")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload[0] = byte(i)
		if err := pv.WriteBytes(0, payload); err != nil {
			b.Fatal(err)
		}
		got, err := cv.ReadBytes(0, 64)
		if err != nil || got[0] != byte(i) {
			b.Fatal("handoff failed")
		}
	}
}

// BenchmarkIPCMessagePassing: the same 64-byte record linearised into a
// message, copied into and out of a kernel pipe, and decoded.
func BenchmarkIPCMessagePassing(b *testing.B) {
	pipe := newBenchPipe()
	st := rwho.SyntheticStatus(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.RecvTime = uint32(i)
		pipe.send(st)
		got := pipe.recv()
		if got.RecvTime != uint32(i) {
			b.Fatal("handoff failed")
		}
	}
}

// benchPipe marshals a Status over a baseline.Pipe.
type benchPipe struct {
	p *pipeShim
}

type pipeShim struct{ ch chan []byte }

func newBenchPipe() *benchPipe {
	return &benchPipe{p: &pipeShim{ch: make(chan []byte, 1)}}
}

func (bp *benchPipe) send(st rwho.Status) {
	msg := encodeStatus(st)
	cp := make([]byte, len(msg))
	copy(cp, msg)
	bp.p.ch <- cp
}

func (bp *benchPipe) recv() rwho.Status {
	m := <-bp.p.ch
	out := make([]byte, len(m))
	copy(out, m)
	return decodeStatus(out)
}

func encodeStatus(st rwho.Status) []byte {
	return []byte(fmt.Sprintf("%s %d %d %d %d %d %d",
		st.Host, st.RecvTime, st.BootTime, st.Load[0], st.Load[1], st.Load[2], st.NUsers))
}

func decodeStatus(b []byte) rwho.Status {
	var st rwho.Status
	fmt.Sscanf(string(b), "%s %d %d %d %d %d %d",
		&st.Host, &st.RecvTime, &st.BootTime, &st.Load[0], &st.Load[1], &st.Load[2], &st.NUsers)
	return st
}

// ---- E-rpc: the three client/server interaction styles -----------------------------------

func kvSetup(b *testing.B) (*kern.Kernel, *svc.Table) {
	k := kern.New()
	if err := svc.EnsureSegment(k.FS, "/srv/kv"); err != nil {
		b.Fatal(err)
	}
	server := k.Spawn(0)
	tab, err := svc.CreateTable(k, server, "/srv/kv", 256)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		if err := tab.Put(i, i*3); err != nil {
			b.Fatal(err)
		}
	}
	return k, tab
}

// BenchmarkKVDirectShared: the Hemlock way — the client operates on the
// server's data structure directly, under a user-space spin lock. No
// kernel boundary is crossed at all.
func BenchmarkKVDirectShared(b *testing.B) {
	k, _ := kvSetup(b)
	client := k.Spawn(0)
	tab, err := svc.OpenTable(k, client, "/srv/kv")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint32(i % 100)
		v, err := tab.Get(key)
		if err != nil || v != key*3 {
			b.Fatalf("get: %d, %v", v, err)
		}
	}
}

// BenchmarkKVPDCall: synchronous service via the protection-domain-switch
// call, request record in shared memory.
func BenchmarkKVPDCall(b *testing.B) {
	k, tab := kvSetup(b)
	if err := svc.EnsureSegment(k.FS, "/srv/req"); err != nil {
		b.Fatal(err)
	}
	id, err := svc.StartPDServer(k, tab, "/srv/req")
	if err != nil {
		b.Fatal(err)
	}
	client := k.Spawn(0)
	c, err := svc.NewPDClient(k, client, id, "/srv/req", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint32(i % 100)
		v, err := c.Get(key)
		if err != nil || v != key*3 {
			b.Fatalf("get: %d, %v", v, err)
		}
	}
}

// BenchmarkKVMessageRPC: the baseline — every request and reply is
// linearised, copied into a pipe, copied out, and parsed.
func BenchmarkKVMessageRPC(b *testing.B) {
	table := map[uint32]uint32{}
	for i := uint32(0); i < 100; i++ {
		table[i] = i * 3
	}
	rpc := baseline.NewRPC()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			rpc.Serve(func(req []byte) []byte {
				var key uint32
				fmt.Sscanf(string(req), "get %d", &key)
				return []byte(fmt.Sprintf("val %d", table[key]))
			})
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint32(i % 100)
		rep := rpc.Call([]byte(fmt.Sprintf("get %d", key)))
		var v uint32
		fmt.Sscanf(string(rep), "val %d", &v)
		if v != key*3 {
			b.Fatalf("rpc get %d = %d", key, v)
		}
	}
	<-done
}
