package hemlock_test

// A day-in-the-life integration test: many programs, several sharing
// patterns, a fork, a reboot — with resource accounting checked at the
// end. This is the whole system exercised through the public API only.

import (
	"bytes"
	"fmt"
	"testing"

	"hemlock"
	"hemlock/internal/shmfs"
)

func TestSoakManyProgramsOneMachine(t *testing.T) {
	sys := hemlock.New()

	// A public scoreboard module and a private scratch module.
	mustAsm(t, sys, "/lib/score.o", `
        .data
        .globl  scores
scores: .space  256
        .globl  score_n
score_n: .word  0
`)
	mustAsm(t, sys, "/lib/scratch.o", `
        .data
        .globl  scratch
scratch: .space 64
`)
	// The player program bumps score_n and records its pid.
	mustAsm(t, sys, "/bin/player.o", `
        .text
        .globl  main
        .extern scores
        .extern score_n
main:
        li      $v0, 3          # getpid
        syscall
        move    $t3, $v0
        la      $t0, score_n
        lw      $t1, 0($t0)
        la      $t2, scores
        sll     $t4, $t1, 2
        addu    $t2, $t2, $t4
        sw      $t3, 0($t2)     # scores[n] = pid
        addiu   $t1, $t1, 1
        sw      $t1, 0($t0)
        move    $v0, $t1        # exit(n+1)
        jr      $ra
`)
	res, err := sys.Link(&hemlock.LinkOptions{
		Output: "player",
		Modules: []hemlock.Module{
			{Name: "player.o", Class: hemlock.StaticPrivate},
			{Name: "score.o", Class: hemlock.DynamicPublic},
			{Name: "scratch.o", Class: hemlock.DynamicPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sixteen sequential runs: the public counter accumulates, the
	// private scratch never does.
	var pids []int
	for i := 1; i <= 16; i++ {
		pg, err := sys.Launch(res.Image, 0, nil)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		pids = append(pids, pg.P.PID)
		if err := pg.Run(1_000_000); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if pg.P.ExitCode != i {
			t.Fatalf("run %d exited %d", i, pg.P.ExitCode)
		}
	}

	// A watcher process reads the scoreboard and verifies every pid.
	watcher, err := sys.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := watcher.Var("scores")
	if err != nil {
		t.Fatal(err)
	}
	for i, pid := range pids {
		got, err := scores.LoadAt(uint32(4 * i))
		if err != nil {
			t.Fatal(err)
		}
		if got != uint32(pid) {
			t.Fatalf("scores[%d] = %d, want %d", i, got, pid)
		}
	}

	// Fork the watcher; the child sees the same board at the same address
	// and its private writes stay private.
	child, err := watcher.Fork()
	if err != nil {
		t.Fatal(err)
	}
	cScores, err := child.Var("scores")
	if err != nil {
		t.Fatal(err)
	}
	if cScores.Addr != scores.Addr {
		t.Fatal("fork moved the public segment")
	}
	wScratch, _ := watcher.Var("scratch")
	cScratch, _ := child.Var("scratch")
	wScratch.Store(1)
	cScratch.Store(2)
	if v, _ := wScratch.Load(); v != 1 {
		t.Fatal("private scratch aliased across fork")
	}

	// Reboot the machine: the scoreboard survives, the count is intact.
	if err := sys.SaveExecutable("/bin/player", res.Image); err != nil {
		t.Fatal(err)
	}
	var disk bytes.Buffer
	if err := sys.Save(&disk); err != nil {
		t.Fatal(err)
	}
	sys2, err := hemlock.Load(&disk)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := sys2.LoadExecutable("/bin/player")
	if err != nil {
		t.Fatal(err)
	}
	pg, err := sys2.Launch(im2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 17 {
		t.Fatalf("after reboot count = %d, want 17", pg.P.ExitCode)
	}

	// Resource accounting on the original machine: exit everyone, then
	// live frames must be exactly the file-backed ones.
	watcher.P.Exit(0)
	child.P.Exit(0)
	for _, p := range sys.K.Processes() {
		p.Exit(0)
	}
	var fileFrames int
	sys.FS.WalkFiles(func(p string, st shmfs.Stat) error {
		fileFrames += int((st.Size + 4095) / 4096)
		return nil
	})
	live := sys.K.Phys.Stats().Live
	if live != fileFrames {
		t.Fatalf("live frames = %d after all exits, want %d (files only)", live, fileFrames)
	}
}

func TestSoakManyModules(t *testing.T) {
	// 60 public modules in one process: stresses inode allocation, the
	// lookup table, mapping, and symbol resolution together.
	sys := hemlock.New()
	var mods []hemlock.Module
	mods = append(mods, hemlock.Module{Name: "main.o", Class: hemlock.StaticPrivate})
	for i := 0; i < 60; i++ {
		mustAsm(t, sys, fmt.Sprintf("/lib/m%02d.o", i),
			fmt.Sprintf(".data\n.globl mval%02d\nmval%02d: .word %d\n", i, i, 10000+i))
		mods = append(mods, hemlock.Module{Name: fmt.Sprintf("m%02d.o", i), Class: hemlock.DynamicPublic})
	}
	mustAsm(t, sys, "/bin/main.o", trivialMainSrc)
	res, err := sys.Link(&hemlock.LinkOptions{
		Output:      "many",
		Modules:     mods,
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := sys.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		v, err := pg.Var(fmt.Sprintf("mval%02d", i))
		if err != nil {
			t.Fatalf("mval%02d: %v", i, err)
		}
		got, err := v.Load()
		if err != nil || got != uint32(10000+i) {
			t.Fatalf("mval%02d = %d, %v", i, got, err)
		}
	}
	// Every module occupies its own slot, all resolvable by address.
	count := 0
	sys.FS.WalkFiles(func(p string, st shmfs.Stat) error {
		if got, _, err := sys.FS.AddrToPath(st.Addr); err != nil || got != p {
			t.Fatalf("%s: %q %v", p, got, err)
		}
		count++
		return nil
	})
	if count < 120 { // 60 templates + 60 instances + main.o + ...
		t.Fatalf("only %d files", count)
	}
}
