package hemlock_test

// A day-in-the-life integration test: many programs, several sharing
// patterns, a fork, a reboot — with resource accounting checked at the
// end. This is the whole system exercised through the public API only.
//
// Both soaks run as harness scenarios: seeded (replay a failure with
// -harness.seed=N), -short-aware (Scale), and reported with the engine
// counters every other harness failure carries.

import (
	"bytes"
	"fmt"
	"testing"

	"hemlock"
	"hemlock/internal/harness"
	"hemlock/internal/shmfs"
)

func TestSoakManyProgramsOneMachine(t *testing.T) {
	s := harness.NewScenario(t, "soak", 5)
	runs := s.Scale(16, 6)
	sys := hemlock.New()

	// A public scoreboard module and a private scratch module.
	mustAsm(t, sys, "/lib/score.o", `
        .data
        .globl  scores
scores: .space  256
        .globl  score_n
score_n: .word  0
`)
	mustAsm(t, sys, "/lib/scratch.o", `
        .data
        .globl  scratch
scratch: .space 64
`)
	// The player program bumps score_n and records its pid.
	mustAsm(t, sys, "/bin/player.o", `
        .text
        .globl  main
        .extern scores
        .extern score_n
main:
        li      $v0, 3          # getpid
        syscall
        move    $t3, $v0
        la      $t0, score_n
        lw      $t1, 0($t0)
        la      $t2, scores
        sll     $t4, $t1, 2
        addu    $t2, $t2, $t4
        sw      $t3, 0($t2)     # scores[n] = pid
        addiu   $t1, $t1, 1
        sw      $t1, 0($t0)
        move    $v0, $t1        # exit(n+1)
        jr      $ra
`)
	res, err := sys.Link(&hemlock.LinkOptions{
		Output: "player",
		Modules: []hemlock.Module{
			{Name: "player.o", Class: hemlock.StaticPrivate},
			{Name: "score.o", Class: hemlock.DynamicPublic},
			{Name: "scratch.o", Class: hemlock.DynamicPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		s.Failf("link: %v", err)
	}

	// Sequential runs: the public counter accumulates, the private
	// scratch never does.
	ctrRuns := s.Reg.Counter("harness.soak.runs")
	var pids []int
	for i := 1; i <= runs; i++ {
		pg, err := sys.Launch(res.Image, 0, nil)
		if err != nil {
			s.Failf("run %d: %v", i, err)
		}
		pids = append(pids, pg.P.PID)
		if err := pg.Run(1_000_000); err != nil {
			s.Failf("run %d: %v", i, err)
		}
		if pg.P.ExitCode != i {
			s.Failf("run %d exited %d", i, pg.P.ExitCode)
		}
		ctrRuns.Inc()
	}

	// A watcher process reads the scoreboard — in a seeded random order —
	// and verifies every pid.
	watcher, err := sys.Launch(res.Image, 0, nil)
	if err != nil {
		s.Failf("launch watcher: %v", err)
	}
	scores, err := watcher.Var("scores")
	if err != nil {
		s.Failf("resolve scores: %v", err)
	}
	for _, i := range s.Rand.Perm(len(pids)) {
		got, err := scores.LoadAt(uint32(4 * i))
		if err != nil {
			s.Failf("scores[%d]: %v", i, err)
		}
		if got != uint32(pids[i]) {
			s.Failf("scores[%d] = %d, want %d", i, got, pids[i])
		}
	}

	// Fork the watcher; the child sees the same board at the same address
	// and its private writes stay private.
	child, err := watcher.Fork()
	if err != nil {
		s.Failf("fork: %v", err)
	}
	cScores, err := child.Var("scores")
	if err != nil {
		s.Failf("resolve scores in child: %v", err)
	}
	if cScores.Addr != scores.Addr {
		s.Failf("fork moved the public segment: 0x%08x vs 0x%08x", cScores.Addr, scores.Addr)
	}
	wScratch, _ := watcher.Var("scratch")
	cScratch, _ := child.Var("scratch")
	wv, cv := uint32(s.Rand.Intn(1<<16)), uint32(s.Rand.Intn(1<<16))
	wScratch.Store(wv)
	cScratch.Store(cv)
	if v, _ := wScratch.Load(); v != wv {
		s.Failf("private scratch aliased across fork: %d, want %d", v, wv)
	}

	// Reboot the machine: the scoreboard survives, the count is intact.
	if err := sys.SaveExecutable("/bin/player", res.Image); err != nil {
		s.Failf("save executable: %v", err)
	}
	var disk bytes.Buffer
	if err := sys.Save(&disk); err != nil {
		s.Failf("save disk: %v", err)
	}
	sys2, err := hemlock.Load(&disk)
	if err != nil {
		s.Failf("reboot: %v", err)
	}
	im2, err := sys2.LoadExecutable("/bin/player")
	if err != nil {
		s.Failf("reload executable: %v", err)
	}
	pg, err := sys2.Launch(im2, 0, nil)
	if err != nil {
		s.Failf("launch after reboot: %v", err)
	}
	if err := pg.Run(1_000_000); err != nil {
		s.Failf("run after reboot: %v", err)
	}
	if pg.P.ExitCode != runs+1 {
		s.Failf("after reboot count = %d, want %d", pg.P.ExitCode, runs+1)
	}

	// Resource accounting on the original machine: exit everyone and drop
	// the parked zygote templates (they deliberately retain the linked
	// address space for O(1) repeat launches), then live frames must be
	// exactly the file-backed ones.
	watcher.P.Exit(0)
	child.P.Exit(0)
	for _, p := range sys.K.Processes() {
		p.Exit(0)
	}
	sys.K.DropAllZygotes()
	var fileFrames int
	sys.FS.WalkFiles(func(p string, st shmfs.Stat) error {
		fileFrames += int((st.Size + 4095) / 4096)
		return nil
	})
	live := sys.K.Phys.Stats().Live
	if live != fileFrames {
		s.Failf("live frames = %d after all exits, want %d (files only)", live, fileFrames)
	}
	s.Logf("%d runs, %d pids verified, reboot count %d, %d file frames", runs, len(pids), runs+1, fileFrames)
}

func TestSoakManyModules(t *testing.T) {
	// Dozens of public modules in one process: stresses inode allocation,
	// the lookup table, mapping, and symbol resolution together. Module
	// values are seeded and the resolution order is a seeded permutation,
	// so a lookup-table bug that depends on access order has many chances
	// to surface — and one seed to replay.
	s := harness.NewScenario(t, "soak-modules", 6)
	nm := s.Scale(60, 16)
	sys := hemlock.New()
	vals := make([]uint32, nm)
	var mods []hemlock.Module
	mods = append(mods, hemlock.Module{Name: "main.o", Class: hemlock.StaticPrivate})
	for i := 0; i < nm; i++ {
		vals[i] = uint32(s.Rand.Intn(1 << 20))
		mustAsm(t, sys, fmt.Sprintf("/lib/m%02d.o", i),
			fmt.Sprintf(".data\n.globl mval%02d\nmval%02d: .word %d\n", i, i, vals[i]))
		mods = append(mods, hemlock.Module{Name: fmt.Sprintf("m%02d.o", i), Class: hemlock.DynamicPublic})
	}
	mustAsm(t, sys, "/bin/main.o", trivialMainSrc)
	res, err := sys.Link(&hemlock.LinkOptions{
		Output:      "many",
		Modules:     mods,
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		s.Failf("link %d modules: %v", nm, err)
	}
	pg, err := sys.Launch(res.Image, 0, nil)
	if err != nil {
		s.Failf("launch: %v", err)
	}
	ctrVars := s.Reg.Counter("harness.soak.vars")
	for _, i := range s.Rand.Perm(nm) {
		v, err := pg.Var(fmt.Sprintf("mval%02d", i))
		if err != nil {
			s.Failf("mval%02d: %v", i, err)
		}
		got, err := v.Load()
		if err != nil || got != vals[i] {
			s.Failf("mval%02d = %d (%v), want %d", i, got, err, vals[i])
		}
		ctrVars.Inc()
	}
	// Every module occupies its own slot, all resolvable by address.
	count := 0
	sys.FS.WalkFiles(func(p string, st shmfs.Stat) error {
		if got, _, err := sys.FS.AddrToPath(st.Addr); err != nil || got != p {
			s.Failf("%s: AddrToPath(0x%08x) = %q, %v", p, st.Addr, got, err)
		}
		count++
		return nil
	})
	if count < 2*nm { // nm templates + nm instances + main.o + ...
		s.Failf("only %d files for %d modules", count, nm)
	}
	s.Logf("%d modules resolved in seeded order, %d files slot-addressable", nm, count)
}
