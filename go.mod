module hemlock

go 1.22
