#!/bin/sh
# bench.sh — run the interpreter dispatch microbenchmark plus the paper
# benchmarks (Table 1, call cost, pointer chase) and write BENCH_<n>.json.
#
# Usage:
#   scripts/bench.sh <n> [benchtime]
#
# Output:
#   BENCH_<n>.txt   raw `go test -bench` lines — feed two of these straight
#                   to benchstat to compare runs:
#                       benchstat BENCH_3.txt BENCH_4.txt
#   BENCH_<n>.json  the same rows parsed into {name, iterations, ns_per_op}
#                   plus host metadata, for dashboards and CHANGES archaeology.
#
# Run from the repository root. Keep benchmark NAMES stable across PRs —
# benchstat matches on name, so renaming a benchmark orphans its history.
set -eu

n=${1:?usage: scripts/bench.sh <n> [benchtime]}
benchtime=${2:-1s}

cd "$(dirname "$0")/.."

raw=BENCH_"$n".txt
out=BENCH_"$n".json

# Dispatch microbenchmark (internal/vm) and the paper's macro benchmarks
# (repo root). -count=3 gives benchstat enough samples for a variance
# estimate without making CI runs painful.
{
  go test -run=NONE -bench='BenchmarkDispatch' -benchtime="$benchtime" -count=3 ./internal/vm/
  go test -run=NONE -bench='Table1|CallNear|CallFar|PointerChase|LaunchWarm|PrestoParallel|NetShmScale|NetShmDeltaBytes' -benchtime="$benchtime" -count=3 .
} | tee "$raw"

{
  printf '{\n'
  printf '  "bench_id": %s,\n' "$n"
  printf '  "goos": "%s",\n' "$(go env GOOS)"
  printf '  "goarch": "%s",\n' "$(go env GOARCH)"
  printf '  "go_version": "%s",\n' "$(go version | awk '{print $3}')"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "host_cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "results": [\n'
  awk '/^Benchmark/ {
    name=$1; iters=$2; ns=$3
    sub(/-[0-9]+$/, "", name)
    # Custom metrics (ReportMetric) follow ns/op in value/unit pairs; keep
    # the ones the netshm scaling curve and delta-efficiency gate read.
    extra=""
    for (i = 4; i < NF; i++) {
      if ($(i+1) == "bytes/write")      extra = extra sprintf(", \"bytes_per_write\": %s", $i)
      else if ($(i+1) == "ticks/write") extra = extra sprintf(", \"ticks_per_write\": %s", $i)
    }
    # The simulated-fleet order the row was measured at, for dashboards.
    if (match(name, /fleet=[0-9]+/))
      extra = extra sprintf(", \"fleet\": %s", substr(name, RSTART+6, RLENGTH-6))
    if (seen++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}", name, iters, ns, extra
  } END { printf "\n" }' "$raw"
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "wrote $raw and $out"
