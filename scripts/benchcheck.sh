#!/bin/sh
# benchcheck.sh — benchstat-style regression gate over two BENCH_<n>.json
# files (the artifacts scripts/bench.sh writes). Self-contained awk: the
# benchstat binary is not assumed to exist on CI runners.
#
# Usage:
#   scripts/benchcheck.sh <baseline.json> <candidate.json> [threshold_pct]
#
# Two gates, tuned to what each can measure reliably:
#
# 1. Cross-file: for every benchmark name present in both files the best
#    (minimum) ns_per_op of the samples is compared; min-of-N is robust
#    against a noisy neighbour inflating one sample. Every delta is
#    reported. The gate FAILS (exit 1) if a gated benchmark — name
#    containing "Dispatch", "CallNear", or "CallFarTrampoline" — is slower
#    than the baseline by more than threshold_pct (default 20), or if a
#    gated name present in one file is MISSING from the other (a renamed
#    or deleted gated benchmark must fail loudly, not silently shrink the
#    gate).
#
# 2. Within-candidate ratio: the stable-linking launch benchmarks are
#    gated against their cold counterparts measured in the SAME run, so
#    machine-speed differences between the committed baseline and the CI
#    runner cancel out. Table1_<class>Repeat (zygote clone) must come in
#    under 50% of Table1_<class> cold, and LaunchWarm (cache replay, full
#    exec) under 90% of Table1_DynamicPublic cold. If the warm paths
#    silently fall back to a cold relink the ratio collapses to ~100% and
#    the gate fails — on any machine, at any load. Missing repeat names
#    fail too.
#
# The interpreter fast path, the cross-segment call paths, and the
# stable-linking repeat-launch paths are the perf contracts this repo
# tracks hardest; the other macro benchmarks are reported for the record
# but are too system-noisy to gate merges on.
set -eu

base=${1:?usage: scripts/benchcheck.sh <baseline.json> <candidate.json> [threshold_pct]}
cand=${2:?usage: scripts/benchcheck.sh <baseline.json> <candidate.json> [threshold_pct]}
threshold=${3:-20}

awk -v threshold="$threshold" -v basefile="$base" -v candfile="$cand" '
  # Pull (name, ns_per_op) out of a bench.sh result row.
  function row(line, parts) {
    if (match(line, /"name": "[^"]*"/) == 0) return 0
    name = substr(line, RSTART + 9, RLENGTH - 10)
    if (match(line, /"ns_per_op": [0-9.eE+-]+/) == 0) return 0
    ns = substr(line, RSTART + 13, RLENGTH - 13) + 0
    return 1
  }
  # One within-candidate ratio check: warm must be under limit * cold.
  function ratio_gate(warm, cold, limit) {
    if (!(warm in c)) {
      printf "benchcheck: ratio-gated benchmark %s missing from %s\n", warm, candfile
      return 1
    }
    if (!(cold in c)) {
      printf "benchcheck: cold counterpart %s missing from %s\n", cold, candfile
      return 1
    }
    r = c[warm] / c[cold]
    mark = ""
    if (r > limit) { mark = "  << WARM PATH REGRESSION" }
    printf "%-34s %12.2f / %10.2f  =%5.0f%% (max %3.0f%%)%s\n", warm, c[warm], c[cold], r * 100, limit * 100, mark
    return mark != "" ? 1 : 0
  }
  FNR == 1 { file++ }
  # Host-core count of the candidate run: the SMP speed-up gate only
  # means something when the runner can actually execute 4 CPUs at once.
  file == 2 && match($0, /"host_cpus": [0-9]+/) {
    hostcpus = substr($0, RSTART + 13, RLENGTH - 13) + 0
  }
  {
    if (!row($0)) next
    if (file == 1) { if (!(name in b) || ns < b[name]) b[name] = ns }
    else           { if (!(name in c) || ns < c[name]) c[name] = ns }
    # Wire-byte metric of the candidate run, for the delta-efficiency gate
    # (bytes are deterministic in the simulated network: take the min).
    if (file == 2 && match($0, /"bytes_per_write": [0-9.eE+-]+/)) {
      bw = substr($0, RSTART + 19, RLENGTH - 19) + 0
      if (!(name in cb) || bw < cb[name]) cb[name] = bw
    }
  }
  END {
    gatepat = "Dispatch|CallNear|CallFarTrampoline"
    printf "benchcheck: %s (baseline) vs %s, gate: (%s) > +%d%%\n", basefile, candfile, gatepat, threshold
    printf "%-34s %12s %12s %8s\n", "name", "base ns/op", "new ns/op", "delta"
    fail = 0
    n = 0
    for (name in c) if (name in b) order[n++] = name
    # insertion sort for stable, readable output
    for (i = 1; i < n; i++) {
      k = order[i]
      for (j = i - 1; j >= 0 && order[j] > k; j--) order[j+1] = order[j]
      order[j+1] = k
    }
    for (i = 0; i < n; i++) {
      name = order[i]
      delta = (c[name] - b[name]) / b[name] * 100
      mark = ""
      if (name ~ gatepat && delta > threshold) { mark = "  << REGRESSION"; fail = 1 }
      printf "%-34s %12.2f %12.2f %+7.1f%%%s\n", name, b[name], c[name], delta, mark
    }
    # A gated benchmark present in one file but not the other means the
    # comparison above silently skipped it — fail instead of passing.
    for (name in b) if (name ~ gatepat && !(name in c)) {
      printf "benchcheck: gated benchmark %s missing from %s\n", name, candfile; fail = 1
    }
    for (name in c) if (name ~ gatepat && !(name in b)) {
      printf "benchcheck: gated benchmark %s missing from %s\n", name, basefile; fail = 1
    }
    if (n == 0) { print "benchcheck: no common benchmark names — nothing compared"; exit 1 }

    # Stable-linking launch gates: warm vs cold within the candidate run.
    printf "\nwarm-launch ratio gate (within %s)\n", candfile
    printf "%-34s %12s / %10s\n", "name", "warm ns/op", "cold ns/op"
    split("StaticPrivate DynamicPrivate StaticPublic DynamicPublic", classes, " ")
    for (i in classes) {
      cl = classes[i]
      fail += ratio_gate("BenchmarkTable1_" cl "Repeat", "BenchmarkTable1_" cl, 0.5)
    }
    fail += ratio_gate("BenchmarkLaunchWarm", "BenchmarkTable1_DynamicPublic", 0.9)

    # SMP speed-up gate: 4 scheduler CPUs must finish the parallel Presto
    # workload in at most half the 1-CPU time — but only on runners with
    # at least 4 host cores, where the comparison is physical. On smaller
    # hosts the numbers are still recorded, just not gated.
    printf "\nSMP speed-up gate (within %s, host_cpus=%d)\n", candfile, hostcpus
    if (hostcpus >= 4) {
      fail += ratio_gate("BenchmarkPrestoParallel4CPU", "BenchmarkPrestoParallel1CPU", 0.5)
    } else if ("BenchmarkPrestoParallel4CPU" in c && "BenchmarkPrestoParallel1CPU" in c) {
      printf "%-34s %12.2f / %10.2f  =%5.0f%% (informational: host has %d core(s))\n", \
        "BenchmarkPrestoParallel4CPU", c["BenchmarkPrestoParallel4CPU"], \
        c["BenchmarkPrestoParallel1CPU"], \
        c["BenchmarkPrestoParallel4CPU"] / c["BenchmarkPrestoParallel1CPU"] * 100, hostcpus
    } else {
      printf "benchcheck: PrestoParallel benchmarks missing from %s\n", candfile
      fail += 1
    }

    # Delta-efficiency gate: with dirty-byte delta encoding on, a small
    # write must put at most 25% of the full-page wire bytes on the wire,
    # measured within the candidate run so machine speed cancels out. If
    # the delta path silently falls back to full pages the ratio collapses
    # to ~100% and the gate fails.
    printf "\ndelta-efficiency gate (within %s)\n", candfile
    dn = "BenchmarkNetShmDeltaBytes/mode=delta"
    fn = "BenchmarkNetShmDeltaBytes/mode=full"
    if (!(dn in cb)) {
      printf "benchcheck: %s bytes_per_write missing from %s\n", dn, candfile; fail += 1
    } else if (!(fn in cb)) {
      printf "benchcheck: %s bytes_per_write missing from %s\n", fn, candfile; fail += 1
    } else {
      r = cb[dn] / cb[fn]
      mark = ""
      if (r > 0.25) { mark = "  << DELTA ENCODING REGRESSION"; fail += 1 }
      printf "%-34s %12.2f / %10.2f  =%5.0f%% (max  25%%)%s\n", \
        "NetShmDeltaBytes delta/full", cb[dn], cb[fn], r * 100, mark
    }

    if (fail) { print "benchcheck: FAIL — gated benchmark regressed or missing"; exit 1 }
    print "benchcheck: ok"
  }
' "$base" "$cand"
