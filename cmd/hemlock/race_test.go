//go:build race

package main

// raceEnabled reports whether the race detector is compiled into the test
// binary. Timing-sensitive assertions consult it: under the detector every
// tracer sink emission is ~10x slower, so measurement-overhead budgets
// calibrated for plain builds do not hold.
const raceEnabled = true
