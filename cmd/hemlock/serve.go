package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hemlock"
	"hemlock/internal/doctor"
	"hemlock/internal/load"
	"hemlock/internal/server"
)

// cmdServe boots the long-running daemon over the disk image's world:
// every program it launches, every module ldl links and every shared
// segment written through /api/var lives in the ONE persistent machine,
// and the image is saved back when the daemon exits cleanly.
func cmdServe(s *hemlock.System, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	demo := fs.Bool("demo", false, "install the kv demo image and launch a resident agent")
	agent := fs.String("agent", "agent", "name for the resident demo agent")
	timeoutMS := fs.Int("timeout-ms", 0, "default per-request deadline (0 = server default)")
	steps := fs.Uint64("steps", 0, "instruction budget per request (0 = server default)")
	cpus := fs.Int("cpus", 0, "guest scheduler CPUs (0 = HEMLOCK_CPUS / host cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := server.Config{
		DefaultTimeout: time.Duration(*timeoutMS) * time.Millisecond,
		MaxSteps:       *steps,
		CPUs:           *cpus,
	}
	if *demo {
		if _, err := server.InstallDemo(s); err != nil {
			return err
		}
	}
	srv := server.New(s, cfg)
	defer srv.Close()
	if *demo {
		// The agent is launched parked — crt0/ldl start-up only, main never
		// runs — so its exported functions stay callable over /api/call.
		if _, err := srv.Launch(&server.LaunchRequest{Name: *agent, Exe: server.DemoExe}, 0); err != nil {
			return err
		}
		fmt.Fprintf(out, "serve: resident agent %q launched from %s\n", *agent, server.DemoExe)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	fmt.Fprintf(out, "serve: listening on http://%s (SIGINT/SIGTERM drains and exits)\n", ln.Addr())
	return srv.Run(ln, sigs)
}

// cmdLoad drives synthetic traffic. With -addr it targets a running
// daemon over TCP; without, it boots an in-process server over the disk
// image's world (installing the demo agent) and hammers that — the same
// path the CI smoke run takes.
func cmdLoad(s *hemlock.System, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	addr := fs.String("addr", "", "daemon base URL (e.g. http://127.0.0.1:8080); empty = in-process")
	clients := fs.Int("clients", 8, "concurrent clients")
	requests := fs.Int("requests", 125, "requests per client")
	mixName := fs.String("mix", "mixed", "request mix: launch, call, var, mixed")
	seed := fs.Int64("seed", 1, "base seed for the mix draw")
	agent := fs.String("agent", "agent", "resident program the call/var ops target")
	exe := fs.String("exe", server.DemoExe, "executable the launch ops boot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := load.MixByName(*mixName)
	if err != nil {
		return err
	}
	cfg := load.Config{
		Clients: *clients, Requests: *requests, Mix: mix,
		Seed: *seed, Agent: *agent, Exe: *exe,
	}
	var c load.Caller
	if *addr != "" {
		c = load.NewHTTP(*addr, nil)
	} else {
		if _, err := server.InstallDemo(s); err != nil {
			return err
		}
		srv := server.New(s, server.Config{})
		defer srv.Close()
		if _, err := srv.Launch(&server.LaunchRequest{Name: *agent, Exe: *exe}, 0); err != nil {
			return err
		}
		c = load.NewDirect(srv)
	}
	rep, err := load.Run(c, cfg)
	if err != nil {
		return err
	}
	io.WriteString(out, rep.Table())
	if rep.Errors > 0 {
		return fmt.Errorf("load: %d of %d requests failed", rep.Errors, rep.Requests)
	}
	return nil
}

// cmdDoctor runs the self-checks over the disk image's world and prints
// every finding. A critical finding makes the command fail, so scripts
// can gate on the exit status.
func cmdDoctor(s *hemlock.System, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("doctor", flag.ContinueOnError)
	inodeWarn := fs.Float64("inode-warn", 0, "inode fill warn threshold (0 = default)")
	slotWarn := fs.Float64("slot-warn", 0, "segment slot fill warn threshold (0 = default)")
	heapWarn := fs.Float64("heap-warn", 0, "shalloc heap fill warn threshold (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := doctor.Options{InodeWarn: *inodeWarn, SlotWarn: *slotWarn, HeapWarn: *heapWarn}
	findings := doctor.CheckSystem(s, opt)
	if len(findings) == 0 {
		fmt.Fprintln(out, "doctor: no findings — the machine is healthy")
		return nil
	}
	io.WriteString(out, doctor.Render(findings))
	fmt.Fprintf(out, "doctor: %d finding(s), worst %s\n", len(findings), doctor.Worst(findings))
	if doctor.Worst(findings) >= doctor.Critical {
		return fmt.Errorf("doctor: critical findings")
	}
	return nil
}
