package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cli runs one hemlock subcommand against the disk image in dir.
func cli(t *testing.T, dir string, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	full := append([]string{"-img", filepath.Join(dir, "hemlock.img")}, args...)
	if err := run(full, &out); err != nil {
		t.Fatalf("hemlock %s: %v", strings.Join(args, " "), err)
	}
	return out.String()
}

// cliErr runs a subcommand expecting failure.
func cliErr(t *testing.T, dir string, args ...string) error {
	t.Helper()
	var out bytes.Buffer
	full := append([]string{"-img", filepath.Join(dir, "hemlock.img")}, args...)
	err := run(full, &out)
	if err == nil {
		t.Fatalf("hemlock %s unexpectedly succeeded:\n%s", strings.Join(args, " "), out.String())
	}
	return err
}

func writeHostFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0644); err != nil {
		t.Fatal(err)
	}
	return p
}

const cliSharedSrc = `
        .data
        .globl  hits
hits:   .word   0
`

const cliMainSrc = `
        .text
        .globl  main
        .extern hits
main:   la      $t0, hits
        lw      $v0, 0($t0)
        addiu   $v0, $v0, 1
        sw      $v0, 0($t0)
        jr      $ra
`

func TestCLIFullWorkflow(t *testing.T) {
	dir := t.TempDir()
	cli(t, dir, "mkfs")
	shared := writeHostFile(t, dir, "shared.s", cliSharedSrc)
	mainS := writeHostFile(t, dir, "main.s", cliMainSrc)
	cli(t, dir, "cp", shared, "/src/shared.s")
	cli(t, dir, "cp", mainS, "/src/main.s")

	out := cli(t, dir, "as", "/src/shared.s", "/lib/shared.o")
	if !strings.Contains(out, "assembled /lib/shared.o") {
		t.Fatalf("as output: %q", out)
	}
	cli(t, dir, "as", "/src/main.s", "/bin/main.o")

	out = cli(t, dir, "lds", "-o", "/bin/demo", "-C", "/bin", "-default", "/lib",
		"sp:main.o", "dpub:shared.o")
	if !strings.Contains(out, "1 dynamic modules") {
		t.Fatalf("lds output: %q", out)
	}

	// Three runs, three separate CLI invocations, one persistent counter.
	for want := 1; want <= 3; want++ {
		out = cli(t, dir, "run", "/bin/demo")
		if !strings.Contains(out, strings.TrimSpace(string(rune('0'+want)))) {
			// exit code is printed as [exit N]
		}
		if !strings.Contains(out, "[exit "+string(rune('0'+want))+"]") {
			t.Fatalf("run %d output: %q", want, out)
		}
	}

	// The created segment shows up in fsck's perusal.
	out = cli(t, dir, "fsck")
	if !strings.Contains(out, "/lib/shared") || !strings.Contains(out, "lookup table clean") {
		t.Fatalf("fsck output: %q", out)
	}
	// And in ls with its fixed address.
	out = cli(t, dir, "ls", "/lib")
	if !strings.Contains(out, "shared") || !strings.Contains(out, "0x30") {
		t.Fatalf("ls output: %q", out)
	}
}

func TestCLICatAndStat(t *testing.T) {
	dir := t.TempDir()
	cli(t, dir, "mkfs")
	p := writeHostFile(t, dir, "note.txt", "hello disk image")
	cli(t, dir, "cp", p, "/note.txt")
	if out := cli(t, dir, "cat", "/note.txt"); out != "hello disk image" {
		t.Fatalf("cat: %q", out)
	}
	out := cli(t, dir, "stat", "/note.txt")
	if !strings.Contains(out, "type:  file") || !strings.Contains(out, "addr:  0x30") {
		t.Fatalf("stat: %q", out)
	}
	cli(t, dir, "rm", "/note.txt")
	cliErr(t, dir, "cat", "/note.txt")
}

func TestCLINmAndDis(t *testing.T) {
	dir := t.TempDir()
	cli(t, dir, "mkfs")
	p := writeHostFile(t, dir, "m.s", cliMainSrc)
	cli(t, dir, "cp", p, "/src/m.s")
	cli(t, dir, "as", "/src/m.s", "/lib/m.o")
	out := cli(t, dir, "nm", "/lib/m.o")
	if !strings.Contains(out, "T main") || !strings.Contains(out, "U hits") {
		t.Fatalf("nm: %q", out)
	}
	out = cli(t, dir, "dis", "/lib/m.o")
	if !strings.Contains(out, "lui") || !strings.Contains(out, "jr $ra") {
		t.Fatalf("dis: %q", out)
	}
}

func TestCLILayout(t *testing.T) {
	dir := t.TempDir()
	cli(t, dir, "mkfs")
	out := cli(t, dir, "layout")
	for _, want := range []string{"0x30000000", "shared file system", "kernel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("layout missing %q:\n%s", want, out)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	// No image yet.
	cliErr(t, dir, "ls")
	cli(t, dir, "mkfs")
	cliErr(t, dir, "as", "/missing.s", "/lib/x.o")
	cliErr(t, dir, "lds", "-o", "/bin/x", "sp:ghost.o")
	cliErr(t, dir, "run", "/no/such/image")
	cliErr(t, dir, "lds", "-o", "/bin/x", "badclass:mod.o")
	cliErr(t, dir, "lds", "-o", "/bin/x", "nocolonmodule")
	cliErr(t, dir, "stat", "/nope")
}

func TestCLIRunWithEnv(t *testing.T) {
	dir := t.TempDir()
	cli(t, dir, "mkfs")
	// Two versions of a module selected by LD_LIBRARY_PATH.
	v1 := writeHostFile(t, dir, "v1.s", ".data\n.globl v\nv: .word 1\n")
	v2 := writeHostFile(t, dir, "v2.s", ".data\n.globl v\nv: .word 2\n")
	mn := writeHostFile(t, dir, "main.s", `
        .text
        .globl  main
        .extern v
main:   la      $t0, v
        lw      $v0, 0($t0)
        jr      $ra
`)
	cli(t, dir, "cp", v1, "/src/v1.s")
	cli(t, dir, "cp", v2, "/src/v2.s")
	cli(t, dir, "cp", mn, "/src/main.s")
	cli(t, dir, "as", "/src/v1.s", "/v1/cfg.o")
	cli(t, dir, "as", "/src/v2.s", "/v2/cfg.o")
	cli(t, dir, "as", "/src/main.s", "/bin/main.o")
	cli(t, dir, "lds", "-o", "/bin/app", "-C", "/bin", "-default", "/v1",
		"sp:main.o", "dp:cfg.o")
	if out := cli(t, dir, "run", "/bin/app"); !strings.Contains(out, "[exit 1]") {
		t.Fatalf("default run: %q", out)
	}
	if out := cli(t, dir, "run", "-e", "LD_LIBRARY_PATH=/v2", "/bin/app"); !strings.Contains(out, "[exit 2]") {
		t.Fatalf("override run: %q", out)
	}
}

func TestCLIJumpTables(t *testing.T) {
	dir := t.TempDir()
	cli(t, dir, "mkfs")
	fn := writeHostFile(t, dir, "fn.s", `
        .text
        .globl  get5
get5:   li      $v0, 5
        jr      $ra
`)
	mn := writeHostFile(t, dir, "main.s", `
        .text
        .globl  main
        .extern get5
main:   addiu   $sp, $sp, -8
        sw      $ra, 0($sp)
        jal     get5
        lw      $ra, 0($sp)
        addiu   $sp, $sp, 8
        jr      $ra
`)
	cli(t, dir, "cp", fn, "/src/fn.s")
	cli(t, dir, "cp", mn, "/src/main.s")
	cli(t, dir, "as", "/src/fn.s", "/lib/fn.o")
	cli(t, dir, "as", "/src/main.s", "/bin/main.o")
	out := cli(t, dir, "lds", "-o", "/bin/app", "-C", "/bin", "-default", "/lib",
		"-jumptables", "sp:main.o", "dpub:fn.o")
	// The call was routed through a stub, so nothing is retained for
	// start-up resolution (the note itself goes to stderr).
	if !strings.Contains(out, "0 retained relocs") {
		t.Fatalf("lds output: %q", out)
	}
	if out := cli(t, dir, "run", "/bin/app"); !strings.Contains(out, "[exit 5]") {
		t.Fatalf("run: %q", out)
	}
}

func TestCLINmAndDisOnImages(t *testing.T) {
	dir := t.TempDir()
	cli(t, dir, "mkfs")
	m := writeHostFile(t, dir, "m.s", cliMainSrc)
	sh := writeHostFile(t, dir, "s.s", cliSharedSrc)
	cli(t, dir, "cp", m, "/src/m.s")
	cli(t, dir, "cp", sh, "/src/s.s")
	cli(t, dir, "as", "/src/m.s", "/bin/main.o")
	cli(t, dir, "as", "/src/s.s", "/lib/shared.o")
	cli(t, dir, "lds", "-o", "/bin/app", "-C", "/bin", "-default", "/lib",
		"sp:main.o", "dpub:shared.o")
	out := cli(t, dir, "nm", "/bin/app")
	if !strings.Contains(out, "T main") || !strings.Contains(out, "U hits") {
		t.Fatalf("nm on image: %q", out)
	}
	out = cli(t, dir, "dis", "/bin/app")
	if !strings.Contains(out, "00400000") || !strings.Contains(out, "jal") {
		t.Fatalf("dis on image: %q", out)
	}
}
