package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hemlock/internal/netsim"
	"hemlock/internal/obsv"
	"hemlock/internal/obsv/prof"
	"hemlock/internal/rwho"
)

// cmdFleet boots a fleet of machines whose rwhod status table is ONE
// netshm-replicated shared segment, runs the rwhod workload over a lossy
// LAN, and reports convergence plus the protocol's metrics snapshot. It
// needs no disk image: every machine boots fresh, which is the point —
// identically-installed machines agree on the segment's address without
// ever sharing state except through the wire.
func cmdFleet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	n := fs.Int("n", 8, "number of machines")
	rounds := fs.Int("rounds", 3, "rwhod broadcast rounds to run")
	lossPct := fs.Int("loss", 20, "percentage of datagrams the LAN drops (0-90)")
	maxTicks := fs.Int("ticks", 400, "virtual-clock budget per round before giving up")
	jsonOut := fs.Bool("json", false, "print the metrics snapshot as JSON")
	tracePath := fs.String("trace", "", "write the merged fleet Chrome trace (one track per machine) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("fleet: need at least 2 machines")
	}
	if *lossPct < 0 || *lossPct > 90 {
		return fmt.Errorf("fleet: -loss %d out of range 0-90", *lossPct)
	}

	net := netsim.New()
	if *lossPct > 0 {
		pct := uint64(*lossPct)
		// Multiplying by a prime spreads the dropped sequence numbers
		// evenly instead of dropping the first pct of every hundred —
		// still a pure, reproducible function of the datagram.
		net.Drop = func(from, to string, seq uint64) bool { return seq*7919%100 < pct }
	}
	f, err := rwho.NewNetFleet(net, *n, *n)
	if err != nil {
		return err
	}
	var ring *obsv.Ring
	if *tracePath != "" {
		// The flight recorder catches every machine's protocol events;
		// they merge into one causally-ordered Chrome timeline at the end.
		ring = obsv.NewRing(1 << 16)
		f.Fleet.Trace.Attach(ring)
	}
	fmt.Fprintf(out, "fleet: %d machines, %d%% loss, whod segment %s homed on %s\n",
		*n, *lossPct, f.Seg(), f.Machines[0].Host)

	for r := 1; r <= *rounds; r++ {
		ticks, err := f.Round(uint32(r), *maxTicks)
		if err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		gen, _, _ := f.Machines[0].NS.Gen(f.Seg())
		fmt.Fprintf(out, "round %d: converged in %d ticks (generation %d)\n", r, ticks, gen)
	}

	if ring != nil {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		// WriteFleetChrome closes the file: the Chrome sink owns its writer.
		if werr := prof.WriteFleetChrome(tf, f.Fleet.Machines(), ring.Events()); werr != nil {
			return fmt.Errorf("writing fleet trace %s: %w", *tracePath, werr)
		}
		fmt.Fprintf(out, "fleet trace: %d events -> %s\n", ring.Len(), *tracePath)
	}

	last := f.Machines[len(f.Machines)-1]
	outStr, hosts, err := last.Ruptime()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nruptime on %s (a replica) sees %d hosts:\n%s", last.Host, hosts, outStr)

	snap := f.Fleet.Reg.Snapshot()
	if *jsonOut {
		b, err := snap.JSON()
		if err != nil {
			return err
		}
		out.Write(b)
		io.WriteString(out, "\n")
		return nil
	}
	fmt.Fprintf(out, "\nmetrics:\n")
	io.WriteString(out, snap.Text())
	return nil
}
