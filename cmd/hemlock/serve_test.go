package main

import (
	"strings"
	"testing"
)

// TestCLILoadInProcess runs the load subcommand's in-process mode against
// a fresh image: it installs the kv demo, launches the resident agent,
// fires the mix and prints the latency table.
func TestCLILoadInProcess(t *testing.T) {
	dir := t.TempDir()
	cli(t, dir, "mkfs")
	out := cli(t, dir, "load", "-clients", "4", "-requests", "25", "-mix", "mixed")
	for _, want := range []string{"100 requests", "p50", "p95", "p99", "0 errors"} {
		if !strings.Contains(out, want) {
			t.Fatalf("load output missing %q:\n%s", want, out)
		}
	}
	// The in-process run persisted its world: the demo image is now on
	// the disk image, and a follow-up doctor run finds a healthy machine.
	out = cli(t, dir, "doctor")
	if !strings.Contains(out, "healthy") {
		t.Fatalf("doctor output:\n%s", out)
	}
}

// TestCLIDoctorCritical exercises the failure path: a deliberately
// slot-exhausted segment makes doctor print a CRIT finding and exit
// non-zero.
func TestCLIDoctorCritical(t *testing.T) {
	dir := t.TempDir()
	cli(t, dir, "mkfs")
	// Grow a segment to the full 1 MiB inode slot.
	big := writeHostFile(t, dir, "big.bin", strings.Repeat("x", 1<<20))
	cli(t, dir, "cp", big, "/fat")
	err := cliErr(t, dir, "doctor")
	if !strings.Contains(err.Error(), "critical") {
		t.Fatalf("doctor error: %v", err)
	}
}

func TestCLIBadMix(t *testing.T) {
	dir := t.TempDir()
	cli(t, dir, "mkfs")
	if err := cliErr(t, dir, "load", "-mix", "bogus"); !strings.Contains(err.Error(), "unknown mix") {
		t.Fatalf("err = %v", err)
	}
}
