package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestCLIFleet runs the netshm fleet demo end to end: no disk image, a
// lossy LAN, convergence every round, ruptime on a replica seeing every
// host, and the protocol counters in the printed snapshot.
func TestCLIFleet(t *testing.T) {
	var out bytes.Buffer
	// Four rounds: status forwarding is fire-and-forget (rwhod UDP), so a
	// single round can lose a host's packet — repetition makes every host
	// land, deterministically.
	if err := run([]string{"fleet", "-n", "4", "-rounds", "4", "-loss", "20"}, &out); err != nil {
		t.Fatalf("hemlock fleet: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"4 machines, 20% loss",
		"round 1: converged",
		"round 4: converged",
		"sees 4 hosts",
		"machine03",
		"netshm.updates_applied",
		"netsim.delivered",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("fleet output missing %q:\n%s", want, got)
		}
	}
}

// TestCLIFleetJSON checks the -json snapshot form and flag validation.
func TestCLIFleetJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"fleet", "-n", "2", "-rounds", "1", "-loss", "0", "-json"}, &out); err != nil {
		t.Fatalf("hemlock fleet -json: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), `"netshm.updates_applied"`) {
		t.Fatalf("json snapshot missing protocol counters:\n%s", out.String())
	}
	if err := run([]string{"fleet", "-n", "1"}, &bytes.Buffer{}); err == nil {
		t.Fatal("fleet -n 1 unexpectedly succeeded")
	}
	if err := run([]string{"fleet", "-loss", "95"}, &bytes.Buffer{}); err == nil {
		t.Fatal("fleet -loss 95 unexpectedly succeeded")
	}
}
