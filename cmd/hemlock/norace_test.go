//go:build !race

package main

// raceEnabled reports whether the race detector is compiled into the test
// binary. See race_test.go.
const raceEnabled = false
