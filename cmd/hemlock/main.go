// Command hemlock drives a persistent Hemlock machine from the host shell.
// The machine's entire shared file system lives in a disk-image file, so a
// public module created by one invocation is still there — at the same
// virtual address — for the next, exactly like the persistent segments of
// the paper.
//
//	hemlock mkfs                                  create a fresh disk image
//	hemlock cp <hostfile> <fspath>                copy a host file in
//	hemlock cat <fspath>                          print a file
//	hemlock as <src.s> <out.o>                    assemble a template
//	hemlock lds -o <out> [-L dir] class:module... static link
//	hemlock run <image> [-e K=V] [-steps N]       launch and run a program
//	hemlock stats <image> [-json]                 run a program and print metrics
//	hemlock ls <dir> | stat <path> | rm <path>    file system operations
//	hemlock nm <obj> | dis <obj>                  inspect modules
//	hemlock layout <image>                        print the address map (Figure 3)
//	hemlock fsck                                  check & peruse all segments
//	hemlock fleet [-n 8] [-loss 20] [-rounds 3]   run an rwho fleet over netshm
//	hemlock serve [-addr host:port] [-demo]       HTTP daemon over the persistent world
//	hemlock load [-addr URL] [-clients N]         drive load, print the latency table
//	hemlock doctor                                self-check segments, heaps and images
//
// Every subcommand accepts -img <file> (default hemlock.img) and
// -trace <file>, which captures every kernel/VM/linker event: JSON Lines
// by default, or the Chrome trace_event format when the file ends in
// .json (load it in chrome://tracing or ui.perfetto.dev). The profilers
// ride the same flags: -profile launch prints a per-phase breakdown of
// every launch the subcommand performs, and -profile guest attributes
// retired guest instructions to module:function (run only). -profile-out
// <file> additionally writes the launch profile as a Chrome trace, or the
// guest profile in folded-stack format for flamegraph.pl. See
// docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hemlock"
	"hemlock/internal/layout"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
	"hemlock/internal/obsv"
	"hemlock/internal/obsv/prof"
	"hemlock/internal/shmfs"

	"hemlock/internal/isa"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hemlock [-img file] [-trace file] [-profile launch|guest [-profile-out file]] <mkfs|cp|cat|as|lds|run|stats|ls|stat|rm|nm|dis|layout|fsck|fleet|serve|load|doctor> ...")
	os.Exit(2)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hemlock:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	img := "hemlock.img"
	tracePath := ""
	profMode := ""
	profOut := ""
	// Allow leading -img, -trace and -profile flags, in any order, before
	// the subcommand.
	for len(args) >= 2 {
		switch args[0] {
		case "-img":
			img = args[1]
		case "-trace":
			tracePath = args[1]
		case "-profile":
			profMode = args[1]
		case "-profile-out":
			profOut = args[1]
		default:
			goto parsed
		}
		args = args[2:]
	}
parsed:
	switch profMode {
	case "", "launch", "guest":
	default:
		return fmt.Errorf("-profile %q: want launch or guest", profMode)
	}
	if len(args) == 0 {
		usage()
	}
	cmd, rest := args[0], args[1:]

	if cmd == "mkfs" {
		s := hemlock.New()
		return saveImage(s, img)
	}
	if cmd == "fleet" {
		// A fleet is its own set of freshly-booted machines; it neither
		// reads nor writes the disk image.
		return cmdFleet(rest, out)
	}

	s, err := loadImage(img)
	if err != nil {
		return err
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(tracePath, ".json") {
			s.Obs().T.Attach(obsv.NewChromeTrace(f))
		} else {
			s.Obs().T.Attach(obsv.NewJSONL(f))
		}
		defer func() {
			if cerr := s.Obs().T.Close(); cerr != nil && retErr == nil {
				retErr = fmt.Errorf("writing trace %s: %w", tracePath, cerr)
			}
		}()
	}
	var launchProf *prof.LaunchProfile
	if profMode == "launch" {
		launchProf = prof.NewLaunchProfile()
		s.Obs().T.Attach(launchProf)
		// The same spans also feed duration histograms, so a follow-up
		// stats run can read p95 launch phases from the registry.
		s.Obs().T.Attach(obsv.NewSpanDurations(s.Obs().R))
		if profOut != "" {
			f, err := os.Create(profOut)
			if err != nil {
				return err
			}
			s.Obs().T.Attach(obsv.NewChromeTrace(f))
		}
		defer func() {
			if cerr := s.Obs().T.Close(); cerr != nil && retErr == nil {
				retErr = fmt.Errorf("writing profile %s: %w", profOut, cerr)
			}
			fmt.Fprint(out, launchProf.Report().Table())
		}()
	}
	dirty := false
	switch cmd {
	case "cp":
		if len(rest) != 2 {
			return fmt.Errorf("cp needs <hostfile> <fspath>")
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		if err := writeFSFile(s, rest[1], data); err != nil {
			return err
		}
		dirty = true
	case "cat":
		if len(rest) != 1 {
			return fmt.Errorf("cat needs <fspath>")
		}
		data, err := s.FS.ReadFile(rest[0], 0)
		if err != nil {
			return err
		}
		out.Write(data)
	case "as":
		if len(rest) != 2 {
			return fmt.Errorf("as needs <src.s> <out.o>")
		}
		src, err := s.FS.ReadFile(rest[0], 0)
		if err != nil {
			return err
		}
		obj, err := isa.Assemble(base(rest[1]), string(src))
		if err != nil {
			return err
		}
		if err := s.AddTemplate(rest[1], obj); err != nil {
			return err
		}
		fmt.Fprintf(out, "assembled %s: %d text, %d data, %d bss bytes, %d relocs\n",
			rest[1], len(obj.Text), len(obj.Data), obj.BssSize, len(obj.Relocs))
		dirty = true
	case "lds":
		if err := cmdLds(s, rest, out); err != nil {
			return err
		}
		dirty = true
	case "run":
		if err := cmdRun(s, rest, out, profMode == "guest", profOut); err != nil {
			return err
		}
		dirty = true // programs may create segments
	case "stats":
		if err := cmdStats(s, rest, out); err != nil {
			return err
		}
		dirty = true
	case "ls":
		dir := "/"
		if len(rest) == 1 {
			dir = rest[0]
		}
		ents, err := s.FS.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			st, _ := s.FS.LstatPath(dir + "/" + e.Name)
			fmt.Fprintf(out, "%-8s ino=%-4d size=%-8d 0x%08x  %s\n", e.Type, e.Ino, st.Size, shmfs.AddrOf(e.Ino), e.Name)
		}
	case "stat":
		if len(rest) != 1 {
			return fmt.Errorf("stat needs <path>")
		}
		st, err := s.FS.StatPath(rest[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "path:  %s\ntype:  %s\nino:   %d\nsize:  %d\nmode:  %04o\nuid:   %d\naddr:  0x%08x\n",
			rest[0], st.Type, st.Ino, st.Size, st.Mode, st.UID, st.Addr)
	case "rm":
		if len(rest) != 1 {
			return fmt.Errorf("rm needs <path>")
		}
		if err := s.FS.Unlink(rest[0], 0); err != nil {
			return err
		}
		dirty = true
	case "nm":
		if len(rest) != 1 {
			return fmt.Errorf("nm needs <obj or image path>")
		}
		if obj, err := readObj(s, rest[0]); err == nil {
			for _, sym := range obj.Symbols {
				kind := "U"
				if sym.Defined() {
					kind = strings.ToUpper(sym.Section.String()[:1])
					if !sym.Global {
						kind = strings.ToLower(kind)
					}
				}
				fmt.Fprintf(out, "%08x %s %s\n", sym.Value, kind, sym.Name)
			}
			break
		}
		im, err := s.LoadExecutable(rest[0])
		if err != nil {
			return err
		}
		for _, sym := range im.Symbols {
			fmt.Fprintf(out, "%08x T %s\n", sym.Addr, sym.Name)
		}
		for _, r := range im.UndefinedRelocs() {
			fmt.Fprintf(out, "%8s U %s\n", "", r)
		}
		for _, p := range im.PLT {
			fmt.Fprintf(out, "%08x P %s\n", p.Addr, p.Name)
		}
	case "dis":
		if len(rest) != 1 {
			return fmt.Errorf("dis needs <obj or image path>")
		}
		if obj, err := readObj(s, rest[0]); err == nil {
			io.WriteString(out, isa.DisassembleText(obj.Text, 0))
			break
		}
		im, err := s.LoadExecutable(rest[0])
		if err != nil {
			return err
		}
		io.WriteString(out, isa.DisassembleText(im.Text, im.TextBase))
	case "layout":
		if err := cmdLayout(s, rest, out); err != nil {
			return err
		}
	case "fsck":
		if err := cmdFsck(s, out); err != nil {
			return err
		}
	case "serve":
		if err := cmdServe(s, rest, out); err != nil {
			return err
		}
		dirty = true // the daemon's world persists across restarts
	case "load":
		if err := cmdLoad(s, rest, out); err != nil {
			return err
		}
		dirty = true // in-process runs launch programs into the image
	case "doctor":
		if err := cmdDoctor(s, rest, out); err != nil {
			return err
		}
	default:
		usage()
	}
	if dirty {
		return saveImage(s, img)
	}
	return nil
}

func base(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

func loadImage(path string) (*hemlock.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening disk image %s (run 'hemlock mkfs' first?): %w", path, err)
	}
	defer f.Close()
	return hemlock.Load(f)
}

func saveImage(s *hemlock.System, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeFSFile(s *hemlock.System, path string, data []byte) error {
	dir := path
	if i := strings.LastIndexByte(dir, '/'); i > 0 {
		if err := s.FS.MkdirAll(dir[:i], shmfs.DefaultDirMode, 0); err != nil {
			return err
		}
	}
	return s.FS.WriteFile(path, data, shmfs.DefaultFileMode, 0)
}

func readObj(s *hemlock.System, path string) (*hemlock.Object, error) {
	data, err := s.FS.ReadFile(path, 0)
	if err != nil {
		return nil, err
	}
	return objfile.DecodeBytes(data)
}

func parseClass(tag string) (hemlock.Class, error) {
	switch tag {
	case "sp", "static-private":
		return hemlock.StaticPrivate, nil
	case "dp", "dynamic-private":
		return hemlock.DynamicPrivate, nil
	case "spub", "static-public":
		return hemlock.StaticPublic, nil
	case "dpub", "dynamic-public":
		return hemlock.DynamicPublic, nil
	}
	return 0, fmt.Errorf("unknown sharing class %q (sp|dp|spub|dpub)", tag)
}

func cmdLds(s *hemlock.System, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lds", flag.ContinueOnError)
	outPath := fs.String("o", "/bin/a.out", "output image path")
	linkDir := fs.String("C", "/", "directory in which linking occurs")
	var dirs multiFlag
	fs.Var(&dirs, "L", "search directory (repeatable)")
	env := fs.String("env", "", "LD_LIBRARY_PATH at static link time")
	var defaults multiFlag
	fs.Var(&defaults, "default", "default library directory (repeatable)")
	jumpTables := fs.Bool("jumptables", false, "route calls to unknown functions through lazy jump-table stubs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("lds: no modules (use class:module, e.g. sp:main.o dpub:shared.o)")
	}
	opts := &lds.Options{
		Output:      *outPath,
		LinkDir:     *linkDir,
		CmdPath:     dirs,
		DefaultPath: defaults,
		JumpTables:  *jumpTables,
	}
	if *env != "" {
		opts.EnvPath = strings.Split(*env, ":")
	}
	for _, m := range fs.Args() {
		tag, name, ok := strings.Cut(m, ":")
		if !ok {
			return fmt.Errorf("lds: module %q must be class:name", m)
		}
		class, err := parseClass(tag)
		if err != nil {
			return err
		}
		opts.Modules = append(opts.Modules, hemlock.Module{Name: name, Class: class})
	}
	res, err := s.Link(opts)
	if err != nil {
		return err
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, w)
	}
	if err := s.SaveExecutable(*outPath, res.Image); err != nil {
		return err
	}
	fmt.Fprintf(out, "linked %s: entry 0x%08x, %d bytes text, %d symbols, %d retained relocs, %d dynamic modules\n",
		*outPath, res.Image.Entry, len(res.Image.Text), len(res.Image.Symbols),
		len(res.Image.Relocs), len(res.Image.Dyn.DynModules))
	return nil
}

func cmdRun(s *hemlock.System, args []string, out io.Writer, guestProf bool, profOut string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	steps := fs.Uint64("steps", 10_000_000, "instruction budget")
	uid := fs.Int("uid", 0, "user id")
	verbose := fs.Bool("v", false, "trace dynamic-linker events to stderr")
	topN := fs.Int("top", 20, "symbols to print with -profile guest")
	var envs multiFlag
	fs.Var(&envs, "e", "environment variable K=V (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run needs <image path>")
	}
	im, err := s.LoadExecutable(fs.Arg(0))
	if err != nil {
		return err
	}
	env := map[string]string{}
	for _, e := range envs {
		k, v, ok := strings.Cut(e, "=")
		if !ok {
			return fmt.Errorf("bad -e %q", e)
		}
		env[k] = v
	}
	if *verbose {
		// The old W.Trace closure is superseded by a text sink on the
		// kernel tracer, which carries the same linker events (typed)
		// plus every other subsystem's.
		s.Obs().T.Attach(obsv.NewText(os.Stderr))
	}
	pg, err := s.Launch(im, *uid, env)
	if err != nil {
		return err
	}
	var sampler *prof.GuestSampler
	if guestProf {
		sampler = prof.NewGuestSampler()
		pg.P.CPU.SetSampler(sampler)
	}
	runErr := pg.Run(*steps)
	io.WriteString(out, pg.Output())
	if runErr != nil {
		return runErr
	}
	fmt.Fprintf(out, "[exit %d]\n", pg.P.ExitCode)
	if sampler != nil {
		sampler.Flush(pg.P.CPU.PC, pg.P.CPU.Steps)
		sym := guestSymbolizer(im, pg)
		fmt.Fprintf(out, "\nguest profile: %d instructions attributed\n", sampler.Total())
		io.WriteString(out, sampler.TopN(sym, *topN))
		if profOut != "" {
			if err := os.WriteFile(profOut, []byte(sampler.Folded(sym)), 0644); err != nil {
				return err
			}
		}
	}
	return nil
}

// guestSymbolizer assembles the symbol sources for a finished run: the
// program image's own text, plus every module the dynamic linker brought
// in (their exports name the shared text other processes reuse).
func guestSymbolizer(im *hemlock.Image, pg *hemlock.Program) *prof.Symbolizer {
	sym := &prof.Symbolizer{}
	sym.AddModule(im.Name, im.TextBase, im.TextBase+uint32(len(im.Text)), im.Symbols)
	for _, in := range pg.LDL.Instances() {
		sym.AddModule(in.Name, in.Base, in.Base+in.Size, in.Symbols())
	}
	return sym
}

// cmdStats runs a program like cmdRun and then prints the machine's
// metrics snapshot: every counter, gauge and histogram the kernel, VM and
// linkers maintain.
func cmdStats(s *hemlock.System, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	steps := fs.Uint64("steps", 10_000_000, "instruction budget")
	uid := fs.Int("uid", 0, "user id")
	jsonOut := fs.Bool("json", false, "print the snapshot as JSON")
	var envs multiFlag
	fs.Var(&envs, "e", "environment variable K=V (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stats needs <image path>")
	}
	im, err := s.LoadExecutable(fs.Arg(0))
	if err != nil {
		return err
	}
	env := map[string]string{}
	for _, e := range envs {
		k, v, ok := strings.Cut(e, "=")
		if !ok {
			return fmt.Errorf("bad -e %q", e)
		}
		env[k] = v
	}
	pg, err := s.Launch(im, *uid, env)
	if err != nil {
		return err
	}
	runErr := pg.Run(*steps)
	os.Stderr.WriteString(pg.Output())
	if runErr != nil {
		return runErr
	}
	snap := s.Obs().R.Snapshot()
	if *jsonOut {
		b, err := snap.JSON()
		if err != nil {
			return err
		}
		out.Write(b)
		io.WriteString(out, "\n")
		return nil
	}
	io.WriteString(out, snap.Text())
	return nil
}

func cmdLayout(s *hemlock.System, args []string, out io.Writer) error {
	fmt.Fprintln(out, "Hemlock address space (Figure 3):")
	for _, r := range []struct {
		lo, hi uint32
	}{
		{0x00000000, layout.TextLimit},
		{layout.PrivDataBase, layout.PrivDataLimit},
		{layout.SharedBase, layout.SharedLimit},
		{layout.StackBase, layout.KernelBase},
		{layout.KernelBase, 0xFFFFFFFF},
	} {
		fmt.Fprintf(out, "  0x%08x - 0x%08x  %s\n", r.lo, r.hi, layout.RegionName(r.lo))
	}
	if len(args) == 1 {
		im, err := s.LoadExecutable(args[0])
		if err != nil {
			return err
		}
		pg, err := s.Launch(im, 0, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nmappings of %s after ldl start-up:\n", args[0])
		for _, r := range pg.P.Regions() {
			fmt.Fprintf(out, "  0x%08x - 0x%08x  %s  %s\n", r.Start, r.End, r.Prot, layout.RegionName(r.Start))
		}
	}
	return nil
}

func cmdFsck(s *hemlock.System, out io.Writer) error {
	// Consistency: the linear table must agree with a fresh scan.
	before := s.FS.TableLen()
	n := s.FS.BootScan()
	status := "clean"
	if n != before {
		status = fmt.Sprintf("REPAIRED (table had %d entries, scan found %d)", before, n)
	}
	fmt.Fprintf(out, "shared file system: %d/%d inodes in use, lookup table %s\n",
		s.FS.InodesInUse(), shmfs.NumInodes, status)
	fmt.Fprintln(out, "segments in existence (peruse for manual cleanup):")
	return s.FS.WalkFiles(func(p string, st shmfs.Stat) error {
		fmt.Fprintf(out, "  0x%08x  %8d bytes  uid %-4d  %s\n", st.Addr, st.Size, st.UID, p)
		return nil
	})
}

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
