package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestCLIProfileLaunch(t *testing.T) {
	dir := t.TempDir()
	buildDemo(t, dir)
	chrome := filepath.Join(dir, "launch.json")
	// A single ~100µs launch can lose a scheduler preemption's worth of
	// wall time to the unattributed bucket, so allow a few attempts: an
	// instrumentation gap would fail every one.
	var out string
	for attempt := 0; ; attempt++ {
		out = cli(t, dir, "-profile", "launch", "-profile-out", chrome, "run", "/bin/demo")
		if !strings.Contains(out, "[exit") {
			t.Fatalf("run under -profile launch: %q", out)
		}
		for _, want := range []string{"launches: 1", "kern.exec", "ldl.start", "self%"} {
			if !strings.Contains(out, want) {
				t.Fatalf("launch profile missing %q:\n%s", want, out)
			}
		}
		// The acceptance bar: >= 95% of launch wall time attributed, OR
		// at most 13µs unattributed. The absolute arm exists because the
		// unattributed bucket has a constant floor — the tracer stamps a
		// timestamp and THEN fans out to three sinks, so every root-level
		// event charges its sink cost (~7-10µs per launch, first-touch
		// allocations included) to launch self time — and since stable
		// linking cut launches to ~100µs that floor alone is ~7-9% of the
		// wall time. A genuinely missing phase span adds its whole
		// duration (the smallest, link.zygote_register, is ≥7µs even on
		// the fastest launches) on top of the floor and fails both arms.
		// Under the race detector the floor itself is 60-100µs (every
		// sink emission is ~10x slower), so the attribution gate is left
		// to the plain run of this same test.
		pct := attribution(t, out)
		unattr := launchTotal(t, out) * time.Duration(1000-int64(pct*10)) / 1000
		if raceEnabled || pct >= 95.0 || unattr <= 13*time.Microsecond {
			break
		}
		if attempt == 4 {
			t.Fatalf("attribution %.1f%% (%v unattributed) on every attempt:\n%s", pct, unattr, out)
		}
	}
	// -profile-out wrote a loadable Chrome trace of the launch spans.
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("profile-out is not a JSON array: %v", err)
	}
	names := map[string]bool{}
	for _, e := range events {
		if e.Ph == "B" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"launch", "exec", "start"} {
		if !names[want] {
			t.Fatalf("chrome profile spans %v missing %q", names, want)
		}
	}
}

// attribution extracts the "attributed: NN.N%" figure from a launch
// profile table.
func attribution(t *testing.T, out string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "attributed:") {
			continue
		}
		f := strings.Fields(line)
		pct, err := strconv.ParseFloat(strings.TrimSuffix(f[len(f)-1], "%"), 64)
		if err != nil {
			t.Fatalf("bad attribution %q: %v", f[len(f)-1], err)
		}
		return pct
	}
	t.Fatalf("no attributed: line in:\n%s", out)
	return 0
}

// launchTotal extracts the "total: 123.4µs" figure from a launch profile
// table.
func launchTotal(t *testing.T, out string) time.Duration {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		for i := 0; i+1 < len(f); i++ {
			if f[i] == "total:" {
				d, err := time.ParseDuration(f[i+1])
				if err != nil {
					t.Fatalf("bad launch total %q: %v", f[i+1], err)
				}
				return d
			}
		}
	}
	t.Fatalf("no total: figure in:\n%s", out)
	return 0
}

func TestCLIProfileGuest(t *testing.T) {
	dir := t.TempDir()
	buildDemo(t, dir)
	folded := filepath.Join(dir, "out.folded")
	out := cli(t, dir, "-profile", "guest", "-profile-out", folded, "run", "/bin/demo")
	if !strings.Contains(out, "[exit 1]") {
		t.Fatalf("run under -profile guest: %q", out)
	}
	// The sampler fires at block boundaries, so symbol-level resolution
	// needs the block engine: with HEMLOCK_BLOCK_ENGINE=0 the whole
	// 11-instruction demo retires inside one per-instruction batch and
	// every sample lands on the batch's entry PC (__start). Under that
	// matrix leg only the profile plumbing is checked, not granularity.
	wants := []string{"guest profile:", "instructions", "main"}
	if os.Getenv("HEMLOCK_BLOCK_ENGINE") == "0" {
		wants = []string{"guest profile:", "instructions", "__start"}
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Fatalf("guest profile missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	// Folded-stack lines: "module;function count".
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || !strings.Contains(string(data), ";") {
		t.Fatalf("folded output malformed:\n%s", data)
	}
	if os.Getenv("HEMLOCK_BLOCK_ENGINE") != "0" && !strings.Contains(string(data), "main") {
		t.Fatalf("folded output misses the entry symbol:\n%s", data)
	}
}

func TestCLIProfileBadMode(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-img", filepath.Join(dir, "x.img"), "-profile", "cpu", "mkfs"}, &out)
	if err == nil || !strings.Contains(err.Error(), "want launch or guest") {
		t.Fatalf("bad -profile mode: %v", err)
	}
}

func TestCLIFleetTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "fleet.json")
	var out bytes.Buffer
	if err := run([]string{"fleet", "-n", "3", "-rounds", "2", "-loss", "0", "-trace", trace}, &out); err != nil {
		t.Fatalf("hemlock fleet -trace: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "fleet trace:") {
		t.Fatalf("no fleet trace summary:\n%s", out.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("fleet trace is not a JSON array: %v", err)
	}
	tracks := map[float64]string{}
	phases := map[string]int{}
	for _, r := range recs {
		if r["ph"] == "M" && r["name"] == "process_name" {
			tracks[r["pid"].(float64)] = r["args"].(map[string]any)["name"].(string)
			continue
		}
		if ph, ok := r["ph"].(string); ok {
			phases[ph]++
		}
	}
	// One named track per machine.
	if len(tracks) != 3 {
		t.Fatalf("tracks: %v", tracks)
	}
	for pid, name := range tracks {
		if !strings.HasPrefix(name, "machine") {
			t.Fatalf("track %v named %q", pid, name)
		}
	}
	// Causal arrows: at least one write->apply flow pair made it through.
	if phases["s"] == 0 || phases["f"] == 0 {
		t.Fatalf("no flow events in fleet trace: %v", phases)
	}
}
