package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestCLIProfileLaunch(t *testing.T) {
	dir := t.TempDir()
	buildDemo(t, dir)
	chrome := filepath.Join(dir, "launch.json")
	// A single ~100µs launch can lose a scheduler preemption's worth of
	// wall time to the unattributed bucket, so allow a few attempts: an
	// instrumentation gap would fail every one.
	var out string
	for attempt := 0; ; attempt++ {
		out = cli(t, dir, "-profile", "launch", "-profile-out", chrome, "run", "/bin/demo")
		if !strings.Contains(out, "[exit") {
			t.Fatalf("run under -profile launch: %q", out)
		}
		for _, want := range []string{"launches: 1", "kern.exec", "ldl.start", "self%"} {
			if !strings.Contains(out, want) {
				t.Fatalf("launch profile missing %q:\n%s", want, out)
			}
		}
		// The acceptance bar: >= 95% of launch wall time attributed.
		pct := attribution(t, out)
		if pct >= 95.0 {
			break
		}
		if attempt == 4 {
			t.Fatalf("attribution %.1f%% < 95%% on every attempt:\n%s", pct, out)
		}
	}
	// -profile-out wrote a loadable Chrome trace of the launch spans.
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("profile-out is not a JSON array: %v", err)
	}
	names := map[string]bool{}
	for _, e := range events {
		if e.Ph == "B" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"launch", "exec", "start"} {
		if !names[want] {
			t.Fatalf("chrome profile spans %v missing %q", names, want)
		}
	}
}

// attribution extracts the "attributed: NN.N%" figure from a launch
// profile table.
func attribution(t *testing.T, out string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "attributed:") {
			continue
		}
		f := strings.Fields(line)
		pct, err := strconv.ParseFloat(strings.TrimSuffix(f[len(f)-1], "%"), 64)
		if err != nil {
			t.Fatalf("bad attribution %q: %v", f[len(f)-1], err)
		}
		return pct
	}
	t.Fatalf("no attributed: line in:\n%s", out)
	return 0
}

func TestCLIProfileGuest(t *testing.T) {
	dir := t.TempDir()
	buildDemo(t, dir)
	folded := filepath.Join(dir, "out.folded")
	out := cli(t, dir, "-profile", "guest", "-profile-out", folded, "run", "/bin/demo")
	if !strings.Contains(out, "[exit 1]") {
		t.Fatalf("run under -profile guest: %q", out)
	}
	for _, want := range []string{"guest profile:", "instructions", "main"} {
		if !strings.Contains(out, want) {
			t.Fatalf("guest profile missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	// Folded-stack lines: "module;function count".
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || !strings.Contains(string(data), ";") {
		t.Fatalf("folded output malformed:\n%s", data)
	}
	if !strings.Contains(string(data), "main") {
		t.Fatalf("folded output misses the entry symbol:\n%s", data)
	}
}

func TestCLIProfileBadMode(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-img", filepath.Join(dir, "x.img"), "-profile", "cpu", "mkfs"}, &out)
	if err == nil || !strings.Contains(err.Error(), "want launch or guest") {
		t.Fatalf("bad -profile mode: %v", err)
	}
}

func TestCLIFleetTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "fleet.json")
	var out bytes.Buffer
	if err := run([]string{"fleet", "-n", "3", "-rounds", "2", "-loss", "0", "-trace", trace}, &out); err != nil {
		t.Fatalf("hemlock fleet -trace: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "fleet trace:") {
		t.Fatalf("no fleet trace summary:\n%s", out.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("fleet trace is not a JSON array: %v", err)
	}
	tracks := map[float64]string{}
	phases := map[string]int{}
	for _, r := range recs {
		if r["ph"] == "M" && r["name"] == "process_name" {
			tracks[r["pid"].(float64)] = r["args"].(map[string]any)["name"].(string)
			continue
		}
		if ph, ok := r["ph"].(string); ok {
			phases[ph]++
		}
	}
	// One named track per machine.
	if len(tracks) != 3 {
		t.Fatalf("tracks: %v", tracks)
	}
	for pid, name := range tracks {
		if !strings.HasPrefix(name, "machine") {
			t.Fatalf("track %v named %q", pid, name)
		}
	}
	// Causal arrows: at least one write->apply flow pair made it through.
	if phases["s"] == 0 || phases["f"] == 0 {
		t.Fatalf("no flow events in fleet trace: %v", phases)
	}
}
