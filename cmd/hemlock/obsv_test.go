package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildDemo assembles and links the shared-counter demo into /bin/demo.
func buildDemo(t *testing.T, dir string) {
	t.Helper()
	cli(t, dir, "mkfs")
	shared := writeHostFile(t, dir, "shared.s", cliSharedSrc)
	mainS := writeHostFile(t, dir, "main.s", cliMainSrc)
	cli(t, dir, "cp", shared, "/src/shared.s")
	cli(t, dir, "cp", mainS, "/src/main.s")
	cli(t, dir, "as", "/src/shared.s", "/lib/shared.o")
	cli(t, dir, "as", "/src/main.s", "/bin/main.o")
	cli(t, dir, "lds", "-o", "/bin/demo", "-C", "/bin", "-default", "/lib",
		"sp:main.o", "dpub:shared.o")
}

func TestCLITraceJSONL(t *testing.T) {
	dir := t.TempDir()
	buildDemo(t, dir)
	trace := filepath.Join(dir, "out.jsonl")
	out := cli(t, dir, "-trace", trace, "run", "/bin/demo")
	if !strings.Contains(out, "[exit 1]") {
		t.Fatalf("run under -trace: %q", out)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 5 {
		t.Fatalf("trace has only %d events:\n%s", len(lines), data)
	}
	subsys := map[string]bool{}
	for _, line := range lines {
		var e struct {
			TS     int64  `json:"ts"`
			Subsys string `json:"subsys"`
			Name   string `json:"name"`
			Ph     string `json:"ph"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if e.Subsys == "" || e.Name == "" || e.Ph == "" {
			t.Fatalf("trace line missing fields: %q", line)
		}
		subsys[e.Subsys] = true
	}
	// The acceptance bar: events from at least three subsystems.
	for _, want := range []string{"kern", "addrspace", "ldl"} {
		if !subsys[want] {
			t.Fatalf("trace covers %v, missing %q", subsys, want)
		}
	}
}

func TestCLITraceChromeFormat(t *testing.T) {
	dir := t.TempDir()
	buildDemo(t, dir)
	trace := filepath.Join(dir, "out.json")
	cli(t, dir, "-trace", trace, "run", "/bin/demo")
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Cat  string `json:"cat"`
		Ph   string `json:"ph"`
		PID  int    `json:"pid"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, data)
	}
	if len(events) < 5 {
		t.Fatalf("only %d trace events", len(events))
	}
	cats := map[string]bool{}
	for _, e := range events {
		cats[e.Cat] = true
	}
	if !cats["kern"] || !cats["ldl"] {
		t.Fatalf("chrome trace categories %v missing kern/ldl", cats)
	}
}

func TestCLIStats(t *testing.T) {
	dir := t.TempDir()
	buildDemo(t, dir)
	out := cli(t, dir, "stats", "/bin/demo")
	for _, want := range []string{"counters:", "kern.syscalls", "ldl.modules_mapped", "mem.frames_live", "gauges:",
		"vm.tlb_hit", "vm.tlb_miss", "vm.icache_fill", "vm.icache_invalidate",
		"vm.block_build", "vm.block_hit", "vm.block_invalidate", "vm.fused_ops"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	// The counter values line up with what the run actually did: one
	// module mapped.
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 2 && f[0] == "ldl.modules_mapped" && f[1] != "1" {
			t.Fatalf("ldl.modules_mapped = %s, want 1", f[1])
		}
	}
}

func TestCLIStatsJSON(t *testing.T) {
	dir := t.TempDir()
	buildDemo(t, dir)
	out := cli(t, dir, "stats", "-json", "/bin/demo")
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(out), &snap); err != nil {
		t.Fatalf("stats -json is not JSON: %v\n%s", err, out)
	}
	if snap.Counters["ldl.modules_mapped"] != 1 {
		t.Fatalf("ldl.modules_mapped = %d, want 1", snap.Counters["ldl.modules_mapped"])
	}
	if snap.Counters["kern.syscalls"] == 0 {
		t.Fatal("kern.syscalls = 0")
	}
	// Translation happened either as per-instruction icache fills or as
	// block builds, depending on which engine batched execution used.
	if snap.Counters["vm.icache_fill"]+snap.Counters["vm.block_build"] == 0 {
		t.Fatalf("vm cache counters not live: %v", snap.Counters)
	}
	if os.Getenv("HEMLOCK_BLOCK_ENGINE") != "0" {
		// Golden block-engine assertions: the demo decodes blocks and
		// executes fused LUI-pair macro-ops (the `la` pseudo-op expands to
		// lui/ori, which the engine fuses). block_hit stays 0 here — every
		// block of a run-once program is entered exactly once; the vm unit
		// tests pin hits and chaining with loops.
		for _, name := range []string{"vm.block_build", "vm.fused_ops"} {
			if snap.Counters[name] == 0 {
				t.Fatalf("%s = 0 with the block engine enabled: %v", name, snap.Counters)
			}
		}
	}
	if _, ok := snap.Gauges["mem.frames_live"]; !ok {
		t.Fatalf("no mem gauges in snapshot: %v", snap.Gauges)
	}
}
