// editor: the paper's emacs-as-a-library vision (§2) plus the linked-list
// text buffer of §5.
//
// "We envision, for example, rewriting the emacs editor with a functional
// interface to which every process with a text window can be linked. With
// lazy linking, we would not bother to bring the editor's more esoteric
// features into a particular process's address space unless and until
// they were needed."
//
// Here the "editor" is a module graph: editor.o (the core) lists three
// feature modules on its own module list. Two window processes link the
// editor and edit one shared buffer (a linked list of heap-allocated
// lines in a public segment). Window 1 only types, so the feature modules
// are mapped inaccessibly and never linked; window 2 invokes search, which
// lazily links exactly that one feature.
//
//	go run ./examples/editor
package main

import (
	"fmt"
	"log"

	"hemlock"
	"hemlock/internal/addrspace"
	"hemlock/internal/edbuf"
	"hemlock/internal/shmfs"
)

func main() {
	sys := hemlock.New()

	// The editor's module graph: a core plus three "esoteric features",
	// each a module with an unresolved reference (so it needs a link
	// step) satisfied by its own helper.
	for _, f := range []string{"search", "spell", "justify"} {
		sys.Asm("/editor/"+f+"-impl.o", fmt.Sprintf(`
        .data
        .globl  %s_table
%s_table: .word 1, 2, 3
`, f, f))
		sys.Asm("/editor/"+f+".o", fmt.Sprintf(`
        .dep    %s-impl.o, dynamic-public
        .searchpath /editor
        .data
        .globl  %s_feature
%s_feature: .word %s_table
`, f, f, f, f))
	}
	// The core references every feature (its dispatch table), so it has
	// undefined references and is linked lazily; linking it maps the
	// feature modules — inaccessibly — without linking them.
	sys.Asm("/editor/editor.o", `
        .dep    search.o, dynamic-public
        .dep    spell.o, dynamic-public
        .dep    justify.o, dynamic-public
        .searchpath /editor
        .data
        .globl  editor_version
editor_version: .word 3
        .globl  editor_features
editor_features:
        .word   search_feature
        .word   spell_feature
        .word   justify_feature
`)
	sys.Asm("/bin/window.o", `
        .text
        .globl  main
main:   li      $v0, 0
        jr      $ra
`)
	res, err := sys.Link(&hemlock.LinkOptions{
		Output: "window",
		Modules: []hemlock.Module{
			{Name: "window.o", Class: hemlock.StaticPrivate},
			{Name: "editor.o", Class: hemlock.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/editor"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The shared buffer lives in its own public segment.
	sys.FS.MkdirAll("/home/doc", shmfs.DefaultDirMode, 0)
	if _, err := sys.FS.Create("/home/doc/notes", shmfs.DefaultFileMode, 0); err != nil {
		log.Fatal(err)
	}
	bufAddr, _ := sys.FS.PathToAddr("/home/doc/notes")

	// Window 1: create the buffer and type.
	w1, err := sys.Launch(res.Image, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.K.MapSharedFile(w1.P, "/home/doc/notes", 128*1024, addrspace.ProtRW); err != nil {
		log.Fatal(err)
	}
	buf1, err := edbuf.Create(w1.P, bufAddr, 128*1024)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range []string{
		"Shared memory ought to be commonplace.",
		"Files are ideal for data that have little internal structure.",
		"Messages are ideal for RPC.",
		"Many interactions could better be expressed as operations on shared data.",
	} {
		if err := buf1.Append(line); err != nil {
			log.Fatal(err)
		}
	}
	n, _ := buf1.Len()
	fmt.Printf("window 1 typed %d lines into the shared buffer\n", n)
	fmt.Printf("feature modules linked so far: %d (mapped, inaccessible, unused)\n",
		sys.W.Stats.LazyLinks)

	// Window 2: attaches to the same buffer — the pointer-rich line list
	// means the same thing here, because the segment has one address.
	w2, err := sys.Launch(res.Image, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	buf2, err := edbuf.Attach(w2.P, bufAddr)
	if err != nil {
		log.Fatal(err)
	}
	buf2.Insert(0, "— notes, kept in a segment —")
	lines, _ := buf2.Lines()
	fmt.Printf("window 2 sees %d lines; first: %q\n", len(lines), lines[0])

	// Window 2 "opens the editor": touching the core links it, which maps
	// the three feature modules into the address space — inaccessibly.
	ev, err := w2.Var("editor_version")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ev.Load(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window 2 opened the editor: %d module(s) linked, features mapped but inaccessible\n",
		sys.W.Stats.LazyLinks)

	// Invoking search touches search_feature: that lazily links search.o
	// (and brings in its implementation) — and ONLY search.
	before := sys.W.Stats.LazyLinks
	sf, err := w2.Var("search_feature")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sf.Load(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window 2 used search: %d feature link step(s) ran (spell and justify still unlinked)\n",
		sys.W.Stats.LazyLinks-before)
	hit, err := buf2.Search(0, "shared data")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search found %q at line %d\n", "shared data", hit)

	// And the edit is visible back in window 1, of course.
	l0, _ := buf1.Line(0)
	if l0 != "— notes, kept in a segment —" {
		log.Fatal("windows diverged")
	}
	fmt.Println("window 1 sees window 2's edit: one buffer, many windows, no files")
}
