package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"hemlock/internal/server"
)

// TestHTTPAPIEndToEnd drives the daemon the way main's fourth style does
// — launch, call, shared-var read over real TCP — and asserts the actual
// response bodies, not just decoded fields.
func TestHTTPAPIEndToEnd(t *testing.T) {
	base, shutdown, err := startDaemon()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// Launch: a fresh program boots from the shared demo image and runs
	// its main to completion.
	body, err := postJSON(base, "/api/launch", &server.LaunchRequest{
		Name: "worker", Exe: server.DemoExe, Run: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"program":"worker"`, `"exited":true`, `"exit_code":0`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("launch body missing %s: %s", want, body)
		}
	}

	// Call: kv_put returns the slot's previous value, kv_get the stored one.
	body, err = postJSON(base, "/api/call", &server.CallRequest{
		Program: "agent", Fn: "kv_put", Args: []uint32{3, 1234}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"ret":0`) {
		t.Fatalf("kv_put body: %s", body)
	}
	body, err = postJSON(base, "/api/call", &server.CallRequest{
		Program: "agent", Fn: "kv_get", Args: []uint32{3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"ret":1234`) {
		t.Fatalf("kv_get body: %s", body)
	}

	// Shared-var read: the same 1234 sits in the kv_table segment at
	// slot 3 (byte offset 12), visible without calling any guest code.
	resp, err := http.Get(base + "/api/var?program=agent&name=kv_table&off=12")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("var read: %s: %s", resp.Status, body)
	}
	for _, want := range []string{`"name":"kv_table"`, `"value":1234`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("var body missing %s: %s", want, body)
		}
	}
	var vr server.VarResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Off != 12 || vr.Addr == 0 {
		t.Fatalf("var response: %+v", vr)
	}
}
