// kvserver: servers communicating with clients through shared data rather
// than messages (section 4, "Utility Programs and Servers").
//
// A name service keeps its table in a shared segment. Clients have three
// ways to talk to it, measured here side by side:
//
//  1. direct shared-memory access under a user-space spin lock — no kernel
//     crossing at all ("processes can interact without necessarily
//     crossing anything");
//
//  2. a synchronous call through the protection-domain-switch system call
//     the paper proposes in section 6, with the request record in shared
//     memory — one cheap crossing, no marshalling;
//
//  3. classical message-passing RPC: linearise, copy in, copy out, parse;
//
//  4. the hemlock serve HTTP API: a daemon owns a persistent machine whose
//     resident agent keeps the table in a shared segment, and remote
//     clients launch programs, call exported functions and read shared
//     variables over TCP — message passing on the outside, shared memory
//     on the inside.
//
//     go run ./examples/kvserver
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"syscall"
	"time"

	"hemlock/internal/baseline"
	"hemlock/internal/core"
	"hemlock/internal/kern"
	"hemlock/internal/server"
	"hemlock/internal/svc"
)

// startDaemon boots a fresh machine with the kv demo installed, a parked
// resident agent (crt0/ldl start-up done, main never run, so its exports
// stay callable), and the HTTP daemon on an ephemeral port. The returned
// shutdown delivers the same fake SIGTERM the signal handler would see
// and waits for the drain.
func startDaemon() (base string, shutdown func() error, err error) {
	sys := core.NewSystem()
	if _, err := server.InstallDemo(sys); err != nil {
		return "", nil, err
	}
	srv := server.New(sys, server.Config{})
	if _, err := srv.Launch(&server.LaunchRequest{Name: "agent", Exe: server.DemoExe}, 0); err != nil {
		srv.Close()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- srv.Run(ln, sigs) }()
	shutdown = func() error {
		sigs <- syscall.SIGTERM
		return <-done
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// postJSON posts a request body and returns the raw response body.
func postJSON(base, path string, req any) ([]byte, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return body, fmt.Errorf("%s: %s: %s", path, resp.Status, body)
	}
	return body, nil
}

const ops = 2000

func main() {
	k := kern.New()
	if err := svc.EnsureSegment(k.FS, "/srv/kv"); err != nil {
		log.Fatal(err)
	}
	if err := svc.EnsureSegment(k.FS, "/srv/req"); err != nil {
		log.Fatal(err)
	}

	// The server process owns the table.
	owner := k.Spawn(0)
	tab, err := svc.CreateTable(k, owner, "/srv/kv", 1024)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint32(0); i < 500; i++ {
		if err := tab.Put(i, i*i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("server populated /srv/kv with 500 entries")

	// Style 1: a client operates on the shared table directly.
	client := k.Spawn(0)
	ctab, err := svc.OpenTable(k, client, "/srv/kv")
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		key := uint32(i % 500)
		v, err := ctab.Get(key)
		if err != nil || v != key*key {
			log.Fatalf("direct get %d: %d, %v", key, v, err)
		}
	}
	direct := time.Since(t0) / ops

	// Style 2: synchronous protection-domain calls.
	id, err := svc.StartPDServer(k, tab, "/srv/req")
	if err != nil {
		log.Fatal(err)
	}
	pd, err := svc.NewPDClient(k, client, id, "/srv/req", 0)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	for i := 0; i < ops; i++ {
		key := uint32(i % 500)
		v, err := pd.Get(key)
		if err != nil || v != key*key {
			log.Fatalf("pd get %d: %d, %v", key, v, err)
		}
	}
	pdDur := time.Since(t0) / ops

	// Style 3: message-passing RPC.
	rpc := baseline.NewRPC()
	go func() {
		for i := 0; i < ops; i++ {
			rpc.Serve(func(req []byte) []byte {
				var key uint32
				fmt.Sscanf(string(req), "get %d", &key)
				v, err := tab.Get(key)
				if err != nil {
					return []byte("err")
				}
				return []byte(fmt.Sprintf("val %d", v))
			})
		}
	}()
	t0 = time.Now()
	for i := 0; i < ops; i++ {
		key := uint32(i % 500)
		rep := rpc.Call([]byte(fmt.Sprintf("get %d", key)))
		var v uint32
		fmt.Sscanf(string(rep), "val %d", &v)
		if v != key*key {
			log.Fatalf("rpc get %d: %d", key, v)
		}
	}
	rpcDur := time.Since(t0) / ops

	// Style 4: the HTTP daemon. Launch a program, put through an exported
	// call, then read the same value back both via a call and straight out
	// of the shared segment with a var read.
	base, shutdown, err := startDaemon()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := postJSON(base, "/api/launch", &server.LaunchRequest{Exe: server.DemoExe, Run: true}); err != nil {
		log.Fatal(err)
	}
	if _, err := postJSON(base, "/api/call", &server.CallRequest{
		Program: "agent", Fn: "kv_put", Args: []uint32{7, 49}}); err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	for i := 0; i < ops; i++ {
		body, err := postJSON(base, "/api/call", &server.CallRequest{
			Program: "agent", Fn: "kv_get", Args: []uint32{7}})
		if err != nil {
			log.Fatal(err)
		}
		var cr server.CallResponse
		if err := json.Unmarshal(body, &cr); err != nil || cr.Ret != 49 {
			log.Fatalf("http get: %s, %v", body, err)
		}
	}
	httpDur := time.Since(t0) / ops
	resp, err := http.Get(base + "/api/var?program=agent&name=kv_table&off=28")
	if err != nil {
		log.Fatal(err)
	}
	varBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vr server.VarResponse
	if err := json.Unmarshal(varBody, &vr); err != nil || vr.Value != 49 {
		log.Fatalf("http var read: %s, %v", varBody, err)
	}
	if err := shutdown(); err != nil {
		log.Fatal(err)
	}

	// A write through the PD service is immediately visible to the direct
	// client: one table, three doors.
	if err := pd.Put(9999, 123); err != nil {
		log.Fatal(err)
	}
	if v, _ := ctab.Get(9999); v != 123 {
		log.Fatal("paths see different tables")
	}

	fmt.Printf("\nper-lookup cost over %d ops:\n", ops)
	fmt.Printf("  shared data, spin lock:   %v\n", direct)
	fmt.Printf("  protection-domain call:   %v (%.1fx direct)\n", pdDur, float64(pdDur)/float64(direct))
	fmt.Printf("  message-passing RPC:      %v (%.1fx direct)\n", rpcDur, float64(rpcDur)/float64(direct))
	fmt.Printf("  HTTP call into daemon:    %v (%.1fx direct)\n", httpDur, float64(httpDur)/float64(direct))
	fmt.Println("\n(the paper: boundaries become acceptable when crossing is cheap —")
	fmt.Println(" and even more so when sharing means not crossing at all)")
}
