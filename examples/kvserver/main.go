// kvserver: servers communicating with clients through shared data rather
// than messages (section 4, "Utility Programs and Servers").
//
// A name service keeps its table in a shared segment. Clients have three
// ways to talk to it, measured here side by side:
//
//  1. direct shared-memory access under a user-space spin lock — no kernel
//     crossing at all ("processes can interact without necessarily
//     crossing anything");
//
//  2. a synchronous call through the protection-domain-switch system call
//     the paper proposes in section 6, with the request record in shared
//     memory — one cheap crossing, no marshalling;
//
//  3. classical message-passing RPC: linearise, copy in, copy out, parse.
//
//     go run ./examples/kvserver
package main

import (
	"fmt"
	"log"
	"time"

	"hemlock/internal/baseline"
	"hemlock/internal/kern"
	"hemlock/internal/svc"
)

const ops = 2000

func main() {
	k := kern.New()
	if err := svc.EnsureSegment(k.FS, "/srv/kv"); err != nil {
		log.Fatal(err)
	}
	if err := svc.EnsureSegment(k.FS, "/srv/req"); err != nil {
		log.Fatal(err)
	}

	// The server process owns the table.
	server := k.Spawn(0)
	tab, err := svc.CreateTable(k, server, "/srv/kv", 1024)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint32(0); i < 500; i++ {
		if err := tab.Put(i, i*i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("server populated /srv/kv with 500 entries")

	// Style 1: a client operates on the shared table directly.
	client := k.Spawn(0)
	ctab, err := svc.OpenTable(k, client, "/srv/kv")
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		key := uint32(i % 500)
		v, err := ctab.Get(key)
		if err != nil || v != key*key {
			log.Fatalf("direct get %d: %d, %v", key, v, err)
		}
	}
	direct := time.Since(t0) / ops

	// Style 2: synchronous protection-domain calls.
	id, err := svc.StartPDServer(k, tab, "/srv/req")
	if err != nil {
		log.Fatal(err)
	}
	pd, err := svc.NewPDClient(k, client, id, "/srv/req", 0)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	for i := 0; i < ops; i++ {
		key := uint32(i % 500)
		v, err := pd.Get(key)
		if err != nil || v != key*key {
			log.Fatalf("pd get %d: %d, %v", key, v, err)
		}
	}
	pdDur := time.Since(t0) / ops

	// Style 3: message-passing RPC.
	rpc := baseline.NewRPC()
	go func() {
		for i := 0; i < ops; i++ {
			rpc.Serve(func(req []byte) []byte {
				var key uint32
				fmt.Sscanf(string(req), "get %d", &key)
				v, err := tab.Get(key)
				if err != nil {
					return []byte("err")
				}
				return []byte(fmt.Sprintf("val %d", v))
			})
		}
	}()
	t0 = time.Now()
	for i := 0; i < ops; i++ {
		key := uint32(i % 500)
		rep := rpc.Call([]byte(fmt.Sprintf("get %d", key)))
		var v uint32
		fmt.Sscanf(string(rep), "val %d", &v)
		if v != key*key {
			log.Fatalf("rpc get %d: %d", key, v)
		}
	}
	rpcDur := time.Since(t0) / ops

	// A write through the PD service is immediately visible to the direct
	// client: one table, three doors.
	if err := pd.Put(9999, 123); err != nil {
		log.Fatal(err)
	}
	if v, _ := ctab.Get(9999); v != 123 {
		log.Fatal("paths see different tables")
	}

	fmt.Printf("\nper-lookup cost over %d ops:\n", ops)
	fmt.Printf("  shared data, spin lock:   %v\n", direct)
	fmt.Printf("  protection-domain call:   %v (%.1fx direct)\n", pdDur, float64(pdDur)/float64(direct))
	fmt.Printf("  message-passing RPC:      %v (%.1fx direct)\n", rpcDur, float64(rpcDur)/float64(direct))
	fmt.Println("\n(the paper: boundaries become acceptable when crossing is cheap —")
	fmt.Println(" and even more so when sharing means not crossing at all)")
}
