// netfleet: the whod status table as ONE distributed shared segment.
//
// The rwho example's fleet gives every machine a private copy of the
// database, kept in sync by raw broadcasts. This walkthrough goes the
// step further that the paper's title promises — linking SHARED segments
// — across machine boundaries: the table is a public module homed on
// machine00, and internal/netshm replicates its pages to every replica at
// the SAME virtual address, over a LAN that drops one datagram in five.
// At the end, the assembly ruptime — compiled code doing plain loads —
// runs on a replica and sees the whole network.
//
//	go run ./examples/netfleet
package main

import (
	"fmt"
	"log"

	"hemlock/internal/netsim"
	"hemlock/internal/rwho"
)

const machines = 8

func main() {
	// A LAN that deterministically drops 20% of all datagrams: protocol
	// traffic and status packets alike.
	net := netsim.New()
	net.Drop = func(from, to string, seq uint64) bool { return seq%5 == 0 }

	// Eight identically-installed machines. Machine00 becomes the
	// segment's home; the rest attach as replicas. Install is per-machine
	// and independent — the shared address comes from the linker's
	// public-module invariant, not from any coordination.
	fleet, err := rwho.NewNetFleet(net, machines, machines)
	if err != nil {
		log.Fatal(err)
	}
	home := fleet.Machines[0]
	fmt.Printf("whod segment %s homed on %s\n", fleet.Seg(), home.Host)
	base, _ := home.NS.Base(fleet.Seg())
	fmt.Printf("segment address 0x%08x on every machine\n\n", base)

	// Three rwhod rounds. Each round: every machine forwards its status
	// to the home (an app datagram on the same NIC), the home stores it
	// into the table through its mapping, and netshm pushes the dirtied
	// pages out — retrying and anti-entropy-pulling around the losses.
	for round := uint32(1); round <= 3; round++ {
		ticks, err := fleet.Round(round, 400)
		if err != nil {
			log.Fatal(err)
		}
		gen, _, _ := home.NS.Gen(fleet.Seg())
		fmt.Printf("round %d: every replica at generation %d after %d virtual ticks\n",
			round, gen, ticks)
	}

	// A replica answers queries from its local mapping: no packets, no
	// files, no parsing — loads.
	last := fleet.Machines[machines-1]
	sts, err := last.DB.Query()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s's table (read from its local replica):\n", last.Host)
	for _, st := range sts {
		fmt.Printf("  %-10s recv@%d boot@%d load %d.%02d\n",
			st.Host, st.RecvTime, st.BootTime, st.Load[0]/100, st.Load[0]%100)
	}

	// The assembly ruptime runs unchanged on the replica: same compiled
	// code, same virtual address, remote data.
	out, count, err := last.Ruptime()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s's assembly ruptime sees %d hosts:\n%s", last.Host, count, out)

	// The protocol's work — and the network's losses — are all counted.
	fmt.Printf("\nmetrics:\n%s", fleet.Fleet.Reg.Snapshot().Text())
}
