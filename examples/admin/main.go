// admin: the administrative-files discussion made concrete (§4, §5).
//
// A passwd-like user database lives in a shared segment: lookups are list
// walks, not file parses. The two §5 caveats are handled the way Unix
// already handles them for /etc/passwd and terminfo:
//
//   - hand edits go through a vipw-style locking editor with a ckpw-style
//     checker (EditUnder + Check);
//
//   - byte-stream commonality is restored by translate utilities
//     (Export/Import, the infocmp/tic pair).
//
//     go run ./examples/admin
package main

import (
	"fmt"
	"log"

	"hemlock/internal/admin"
	"hemlock/internal/kern"
)

func main() {
	k := kern.New()
	k.FS.MkdirAll("/etc", 0644, 0)

	// An "adduser" process creates the database.
	adduser := k.Spawn(0)
	db, err := admin.OpenShared(k, adduser, "/etc/passwd.seg", 128*1024)
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []admin.User{
		{Name: "root", UID: 0, Shell: "/bin/sh"},
		{Name: "garrett", UID: 100, Shell: "/bin/csh"},
		{Name: "scott", UID: 101, Shell: "/bin/tcsh"},
		{Name: "bianchini", UID: 102, Shell: "/bin/sh"},
	} {
		if err := db.Add(u); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("adduser populated /etc/passwd.seg (a shared segment, not a text file)")

	// A login process — a different protection domain — looks a user up
	// directly: no open, no read, no parsing.
	login := k.Spawn(0)
	ldb, err := admin.OpenShared(k, login, "/etc/passwd.seg", 128*1024)
	if err != nil {
		log.Fatal(err)
	}
	u, err := ldb.Lookup("scott")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("login resolved scott -> uid %d, shell %s (getpwnam = a list walk)\n", u.UID, u.Shell)

	// vipw: edit under the database lock, validated before release.
	err = admin.EditUnder(k.FS, "/etc/passwd.seg", adduser.PID, db, func(d *admin.DB) error {
		if err := d.Remove("bianchini"); err != nil {
			return err
		}
		return d.Add(admin.User{Name: "kontothanassis", UID: 103, Shell: "/bin/sh"})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("vipw edit applied under the segment lock and checked (ckpw)")

	// A second editor is refused while someone holds the lock.
	if ok, _ := k.FS.TryLock("/etc/passwd.seg", 999); ok {
		err := admin.EditUnder(k.FS, "/etc/passwd.seg", adduser.PID, db, func(d *admin.DB) error { return nil })
		fmt.Printf("concurrent vipw refused: %v\n", err)
		k.FS.Unlock("/etc/passwd.seg", 999)
	}

	// Commonality restored on demand: export to text for grep/diff/mail...
	text, err := admin.Export(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexported for the standard tools:\n%s", text)
	// ...and import (with checking) brings edited text back.
	if err := admin.Import(db, append(text, []byte("luk:104:/bin/sh\n")...)); err != nil {
		log.Fatal(err)
	}
	users, _ := db.Users()
	fmt.Printf("after import: %d users; login sees the change immediately: ", len(users))
	if _, err := ldb.Lookup("luk"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("luk resolved")
}
