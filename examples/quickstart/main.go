// Quickstart: the Figure 1 pipeline end to end.
//
// Two independently linked programs share a variable by naming the same
// object module at link time. No shm/mmap set-up calls appear anywhere:
// the programs reference `hits` like any extern, lds records the module,
// and ldl creates and maps the shared segment on first use.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hemlock"
)

const sharedSrc = `
        .data
        .globl  hits
hits:   .word   0
`

// Both programs increment the shared counter and exit with its new value.
const progSrc = `
        .text
        .globl  main
        .extern hits
main:   la      $t0, hits
        lw      $v0, 0($t0)
        addiu   $v0, $v0, 1
        sw      $v0, 0($t0)
        jr      $ra
`

func main() {
	sys := hemlock.New()

	// cc: compile the shared module and two private programs.
	if _, err := sys.Asm("/project/shared1.o", sharedSrc); err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{"prog1", "prog2"} {
		if _, err := sys.Asm("/project/"+p+".o", progSrc); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("compiled /project/{shared1,prog1,prog2}.o")

	// lds: link each program with shared1.o as a dynamic public module.
	link := func(name string) *hemlock.Image {
		res, err := sys.Link(&hemlock.LinkOptions{
			Output: name,
			Modules: []hemlock.Module{
				{Name: name + ".o", Class: hemlock.StaticPrivate},
				{Name: "shared1.o", Class: hemlock.DynamicPublic},
			},
			LinkDir: "/project",
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, w := range res.Warnings {
			fmt.Println("  ", w)
		}
		return res.Image
	}
	im1, im2 := link("prog1"), link("prog2")
	fmt.Println("linked prog1 and prog2 (shared1 not created yet: dynamic)")

	// Run program 1: ldl creates /project/shared1 on first use.
	run := func(im *hemlock.Image, label string) {
		pg, err := sys.Launch(im, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := pg.Run(1_000_000); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s exited with hits = %d\n", label, pg.P.ExitCode)
	}
	run(im1, "prog1")
	st, err := sys.FS.StatPath("/project/shared1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ldl created segment /project/shared1 at 0x%08x\n", st.Addr)

	run(im2, "prog2") // a different executable sees prog1's write
	run(im1, "prog1") // and the segment persists across runs

	// Language-level access from the host side, for inspection.
	pg, err := sys.Launch(im1, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	v, err := pg.Var("hits")
	if err != nil {
		log.Fatal(err)
	}
	val, _ := v.Load()
	fmt.Printf("direct read of hits @0x%08x = %d\n", v.Addr, val)
	if val != 3 {
		log.Fatalf("expected 3 increments, got %d", val)
	}
	fmt.Println("ok: three separately linked runs shared one variable")
}
