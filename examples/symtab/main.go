// symtab: the Lynx compiler-tables case study — pointer-rich data shared
// sequentially over time between the programs of a multi-pass toolchain.
//
// Pass 1 (the "utility program" fed by the scanner/parser generators)
// writes the tables into a persistent shared segment. Pass 2 (the
// compiler, a different process, possibly days later) attaches to the
// segment and uses the tables in place. The baseline generates C source
// and re-parses ("recompiles") it on every build — the paper measured that
// at 5400+ lines and 18 seconds per build.
//
//	go run ./examples/symtab
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"hemlock"
	"hemlock/internal/addrspace"
	"hemlock/internal/shmfs"
	"hemlock/internal/symtab"
)

func main() {
	sys := hemlock.New()
	tbl := symtab.Generate(150, 60, 2026)
	fmt.Printf("generator produced tables: %d states x %d symbols\n", tbl.NStates, tbl.NSyms)

	// --- Hemlock path ------------------------------------------------------
	// Pass 1: the utility writes the tables into a persistent segment.
	if err := sys.FS.MkdirAll("/lynx", shmfs.DefaultDirMode, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.FS.Create("/lynx/tables", shmfs.DefaultFileMode, 0); err != nil {
		log.Fatal(err)
	}
	util := sys.K.Spawn(0)
	st, err := sys.K.MapSharedFile(util, "/lynx/tables", shmfs.MaxFile, addrspace.ProtRW)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	if _, err := symtab.WriteSegment(util, st.Addr, shmfs.MaxFile, tbl); err != nil {
		log.Fatal(err)
	}
	writeDur := time.Since(t0)
	fmt.Printf("pass 1 (utility): wrote pointer-rich tables into /lynx/tables in %v\n", writeDur)

	// Pass 2: the compiler attaches — no translation at all.
	compiler := sys.K.Spawn(0)
	if _, err := sys.K.MapSharedFile(compiler, "/lynx/tables", shmfs.MaxFile, addrspace.ProtRW); err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	seg, err := symtab.AttachSegment(compiler, st.Addr)
	if err != nil {
		log.Fatal(err)
	}
	attachDur := time.Since(t0)

	stream := tbl.Stream(2000, 7)
	segTrace, err := seg.Run(stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass 2 (compiler): attached in %v and scanned %d symbols\n", attachDur, len(stream))

	// --- baseline path -------------------------------------------------------
	t0 = time.Now()
	src := symtab.GenerateCSource(tbl)
	rebuilt, err := symtab.CompileCSource(src)
	if err != nil {
		log.Fatal(err)
	}
	compileDur := time.Since(t0)
	lines := strings.Count(src, "\n")
	fmt.Printf("baseline: generated %d lines of C and recompiled them in %v\n", lines, compileDur)
	fmt.Printf("          (the paper: 5400+ lines, 18 s per build on a Sparcstation 1)\n")

	// Both representations drive the scanner identically.
	baseTrace := rebuilt.Run(stream)
	for i := range segTrace {
		if segTrace[i] != baseTrace[i] {
			log.Fatalf("traces diverge at %d", i)
		}
	}
	name, err := seg.Name(5)
	if err != nil || name != tbl.Names[5] {
		log.Fatalf("segment name table broken: %q %v", name, err)
	}
	fmt.Printf("identical scan traces; token 5 is %q through two pointer hops\n", name)
	fmt.Printf("\nper-build table cost: %v (recompile) vs %v (attach) — %.0fx\n",
		compileDur, attachDur, float64(compileDur)/float64(attachDur))
}
