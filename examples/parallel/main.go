// parallel: the Presto case study — shared globals for a parallel
// application without compiler support.
//
// The parent (set-up only) creates a temporary directory, symlinks the
// shared-data template into it, and prepends it to LD_LIBRARY_PATH. The
// children link the shared data as a dynamic public module: the first one
// creates and initialises the segment (under file locking), the rest link
// the same segment, and all of them accumulate into shared counters with
// plain stores. The parent then cleans up. The run also shows the baseline
// this replaced: the 432-line assembly post-processor.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"time"

	"hemlock"
	"hemlock/internal/isa"
	"hemlock/internal/presto"
)

const workers = 6

func main() {
	sys := hemlock.New()

	// --- the Hemlock way -------------------------------------------------
	app, err := presto.Setup(sys, "demo", workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parent: created %s, symlinked template, LD_LIBRARY_PATH=%s\n",
		app.TempDir, app.Env["LD_LIBRARY_PATH"])

	var ws []*presto.Worker
	for i := 0; i < workers; i++ {
		w, err := app.StartWorker(i)
		if err != nil {
			log.Fatal(err)
		}
		ws = append(ws, w)
	}
	fmt.Printf("started %d workers; first one created segment %s\n",
		workers, app.SharedSegmentPath())

	// Each worker does its share of the computation: accumulate i+1, ten
	// times, into its shared counter slot.
	for round := 0; round < 10; round++ {
		for _, w := range ws {
			if err := w.Add(uint32(w.Index + 1)); err != nil {
				log.Fatal(err)
			}
		}
	}
	sum, err := ws[0].Sum(workers)
	if err != nil {
		log.Fatal(err)
	}
	want := uint32(10 * workers * (workers + 1) / 2)
	fmt.Printf("worker 0 reads the combined result from shared memory: %d (want %d)\n", sum, want)
	if sum != want {
		log.Fatal("shared accumulation failed")
	}
	if err := app.Cleanup(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("parent: cleaned up segment, symlink and temp directory")

	// --- the baseline this replaced ---------------------------------------
	src, shared := demoSource()
	t0 := time.Now()
	if _, err := isa.Assemble("worker.s", src); err != nil {
		log.Fatal(err)
	}
	plain := time.Since(t0)

	t0 = time.Now()
	progSrc, sharedSrc, err := presto.PostProcess(src, shared)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := isa.Assemble("worker.s", progSrc); err != nil {
		log.Fatal(err)
	}
	if _, err := isa.Assemble("worker-shared.s", sharedSrc); err != nil {
		log.Fatal(err)
	}
	withPP := time.Since(t0)

	fmt.Printf("\ncompile without post-processor: %v\n", plain)
	fmt.Printf("compile with post-processor:    %v (+%.0f%%)\n",
		withPP, 100*(float64(withPP)/float64(plain)-1))
	fmt.Println("(the paper: the post-processor consumed 1/4 to 1/3 of total compile time)")
}

// demoSource synthesises a worker with 150 shared and 150 private globals.
func demoSource() (string, []string) {
	src := "        .text\n        .globl main\nmain:   jr $ra\n        .data\n"
	var shared []string
	for i := 0; i < 150; i++ {
		name := fmt.Sprintf("shared_g%d", i)
		shared = append(shared, name)
		src += fmt.Sprintf("%s:\n        .word %d, %d\n", name, i, i*i)
		src += fmt.Sprintf("private_g%d:\n        .space 12\n", i)
	}
	return src, shared
}
