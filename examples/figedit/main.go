// figedit: the xfig case study — pointer-rich figures in a persistent
// shared segment.
//
// The editor keeps its object list directly in a shared segment via the
// per-segment allocator. "Saving" is free (the segment is the file);
// reopening is attach-and-walk; duplicating an object uses the same
// pointer-walk copy that the baseline needs 800 extra lines of
// serialisation code to avoid. The ASCII path is run alongside for
// comparison, and the position-dependence caveat is demonstrated.
//
//	go run ./examples/figedit
package main

import (
	"fmt"
	"log"
	"time"

	"hemlock"
	"hemlock/internal/addrspace"
	"hemlock/internal/fig"
	"hemlock/internal/shmfs"
)

const shapes = 300

func main() {
	sys := hemlock.New()

	// The figure lives in a shared-fs segment so it persists and has a
	// globally-agreed address.
	if _, err := sys.FS.Create("/figs/drawing", shmfs.DefaultFileMode, 0); err != nil {
		sys.FS.MkdirAll("/figs", shmfs.DefaultDirMode, 0)
		if _, err := sys.FS.Create("/figs/drawing", shmfs.DefaultFileMode, 0); err != nil {
			log.Fatal(err)
		}
	}
	// Map it into an "editor" process.
	editor := sys.K.Spawn(0)
	st, err := sys.K.MapSharedFile(editor, "/figs/drawing", 512*1024, addrspace.ProtRW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped /figs/drawing at 0x%08x\n", st.Addr)

	f, err := fig.Create(editor, st.Addr, 512*1024)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < shapes; i++ {
		if err := f.Add(fig.SyntheticShape(i)); err != nil {
			log.Fatal(err)
		}
	}
	n, _ := f.Count()
	fmt.Printf("editor drew %d shapes into the segment (save: nothing to do)\n", n)

	// Duplicate an object: the pre-existing pointer-rich copy routine.
	if err := f.Duplicate(3); err != nil {
		log.Fatal(err)
	}
	n, _ = f.Count()
	fmt.Printf("duplicated one object in place (%d shapes now)\n", n)

	// "Quit" and reopen: a second process attaches to the same segment.
	viewer := sys.K.Spawn(0)
	if _, err := sys.K.MapSharedFile(viewer, "/figs/drawing", 512*1024, addrspace.ProtRW); err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	g, err := fig.Attach(viewer, st.Addr)
	if err != nil {
		log.Fatal(err)
	}
	segShapes, err := g.Shapes()
	if err != nil {
		log.Fatal(err)
	}
	segDur := time.Since(t0)
	fmt.Printf("viewer reopened the figure: %d shapes in %v\n", len(segShapes), segDur)

	// The baseline: translate to ASCII, write, read, parse.
	sys.FS.MkdirAll("/figs", shmfs.DefaultDirMode, 0)
	t0 = time.Now()
	if err := fig.SaveASCII(sys.FS, "/figs/drawing.fig", segShapes, 0); err != nil {
		log.Fatal(err)
	}
	loaded, err := fig.LoadASCII(sys.FS, "/figs/drawing.fig", 0)
	if err != nil {
		log.Fatal(err)
	}
	asciiDur := time.Since(t0)
	if len(loaded) != len(segShapes) {
		log.Fatalf("ASCII path lost shapes: %d vs %d", len(loaded), len(segShapes))
	}
	for i := range loaded {
		if loaded[i] != segShapes[i] {
			log.Fatalf("ASCII round trip diverged at %d", i)
		}
	}
	fmt.Printf("ASCII save+load of the same figure: %v (%.1fx the segment reopen)\n",
		asciiDur, float64(asciiDur)/float64(segDur))

	// The caveat the paper owns up to: figures with internal pointers are
	// position-dependent. Copy the segment bytes to a different slot and
	// the list breaks.
	if _, err := sys.FS.Create("/figs/copy", shmfs.DefaultFileMode, 0); err != nil {
		log.Fatal(err)
	}
	data, err := sys.FS.ReadFile("/figs/drawing", 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.FS.WriteFile("/figs/copy", data, shmfs.DefaultFileMode, 0); err != nil {
		log.Fatal(err)
	}
	cpStat, _ := sys.FS.StatPath("/figs/copy")
	cpProc := sys.K.Spawn(0)
	if _, err := sys.K.MapSharedFile(cpProc, "/figs/copy", 512*1024, addrspace.ProtRW); err != nil {
		log.Fatal(err)
	}
	if _, err := fig.Attach(cpProc, cpStat.Addr); err != nil {
		fmt.Printf("cp'd segment at 0x%08x is unusable, as the paper warns: %v\n", cpStat.Addr, err)
	} else {
		// The heap root magic survived byte-copying, but the internal
		// pointers still reference the original slot.
		fmt.Printf("cp'd segment still points into the original at 0x%08x — only xfig itself can copy figures safely\n", st.Addr)
	}
}
