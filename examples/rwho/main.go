// rwho: the paper's administrative-files case study on a simulated
// 65-machine network.
//
// The daemon receives one status packet per machine per tick. The original
// design rewrites one file per machine and every `rwho` invocation re-reads
// and re-parses all of them; the Hemlock design keeps the database in a
// shared segment that the utilities scan directly. This example runs both
// side by side, checks they agree, and reports the time per query.
//
//	go run ./examples/rwho
package main

import (
	"fmt"
	"log"
	"time"

	"hemlock"
	"hemlock/internal/netsim"
	"hemlock/internal/rwho"
)

const machines = 65

func main() {
	sys := hemlock.New()

	// Hemlock path: install whod.o, launch the daemon and a query client
	// (separate processes mapping the same segment).
	im, err := rwho.Install(sys, machines)
	if err != nil {
		log.Fatal(err)
	}
	daemonPg, err := sys.Launch(im, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	shared, err := rwho.Open(daemonPg)
	if err != nil {
		log.Fatal(err)
	}
	clientPg, err := sys.Launch(im, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	sharedClient, err := rwho.Open(clientPg)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline path: per-machine files.
	files, err := rwho.NewFileDB(sys.FS, "/var/rwho", 0)
	if err != nil {
		log.Fatal(err)
	}

	// The daemon runs for a few broadcast rounds.
	for tick := uint32(1); tick <= 5; tick++ {
		for i := 0; i < machines; i++ {
			st := rwho.SyntheticStatus(i, tick)
			if err := shared.Update(st); err != nil {
				log.Fatal(err)
			}
			if err := files.Update(st); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("daemon processed %d status packets into both databases\n", 5*machines)

	// Both views agree record for record.
	a, err := sharedClient.Query()
	if err != nil {
		log.Fatal(err)
	}
	b, err := files.Query()
	if err != nil {
		log.Fatal(err)
	}
	if len(a) != machines || len(b) != machines {
		log.Fatalf("record counts: shared=%d files=%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			log.Fatalf("databases disagree at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	fmt.Printf("both databases agree on all %d machines\n", machines)

	// The assembly ruptime: compiled code scanning the same shared table.
	upImg, err := rwho.InstallUptime(sys)
	if err != nil {
		log.Fatal(err)
	}
	up, err := sys.Launch(upImg, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := up.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembly ruptime saw %d hosts (compiled code, same segment)\n", up.P.ExitCode)

	// One uptime report, from shared memory.
	fmt.Println("\nruptime (first 5 machines, from the shared segment):")
	for _, st := range a[:5] {
		fmt.Printf("  %-10s up since %d, load %d.%02d %d.%02d %d.%02d, %d users\n",
			st.Host, st.BootTime,
			st.Load[0]/100, st.Load[0]%100,
			st.Load[1]/100, st.Load[1]%100,
			st.Load[2]/100, st.Load[2]%100,
			st.NUsers)
	}

	// Timing: the savings rwho users see per invocation.
	const reps = 200
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := sharedClient.Query(); err != nil {
			log.Fatal(err)
		}
	}
	sharedDur := time.Since(t0) / reps
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := files.Query(); err != nil {
			log.Fatal(err)
		}
	}
	fileDur := time.Since(t0) / reps
	fmt.Printf("\nrwho query over %d machines:\n", machines)
	fmt.Printf("  shared segment: %v\n  per-host files: %v  (%.1fx slower)\n",
		sharedDur, fileDur, float64(fileDur)/float64(sharedDur))
	fmt.Println("(the paper: the shared-memory rwho saved 'a little over a second' per call)")

	// Finally, the distributed picture: a small fleet of machines — each
	// its own kernel and shared file system — exchanging real broadcasts.
	net := netsim.New()
	const fleet = 5
	var ms []*rwho.Machine
	for i := 0; i < fleet; i++ {
		m, err := rwho.NewMachine(net, fmt.Sprintf("node%02d", i), i, fleet+2)
		if err != nil {
			log.Fatal(err)
		}
		ms = append(ms, m)
	}
	for tick := uint32(1); tick <= 3; tick++ {
		for _, m := range ms {
			if err := m.Tick(tick); err != nil {
				log.Fatal(err)
			}
		}
		for _, m := range ms {
			if _, err := m.Drain(); err != nil {
				log.Fatal(err)
			}
		}
	}
	out, count, err := ms[2].Ruptime()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed fleet: %d machines, %d datagrams exchanged\n", fleet, net.Stats().Delivered)
	fmt.Printf("node02's assembly ruptime sees %d hosts:\n%s", count, out)
}
