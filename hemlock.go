// Package hemlock is the public API of the Hemlock reproduction: a
// complete, simulated implementation of "Linking Shared Segments"
// (Garrett, Scott, et al., 1993 Winter USENIX).
//
// Hemlock makes cross-application shared memory as easy to use as private
// memory. Shared variables and functions are defined in ordinary object
// modules; the static linker lds assigns each module one of four sharing
// classes (static/dynamic × private/public); public modules live at
// globally-agreed virtual addresses inside a kernel-maintained shared file
// system; and the lazy dynamic linker ldl maps and links modules on first
// use, driven by page faults.
//
// A minimal session:
//
//	sys := hemlock.New()
//	sys.Asm("/lib/counter.o", `
//	        .data
//	        .globl  hits
//	        hits:   .word 0
//	`)
//	sys.Asm("/bin/main.o", `
//	        .text
//	        .globl  main
//	        main:   li $v0, 0
//	                jr $ra
//	`)
//	res, _ := sys.Link(&hemlock.LinkOptions{
//	        Output: "a.out",
//	        Modules: []hemlock.Module{
//	                {Name: "main.o", Class: hemlock.StaticPrivate},
//	                {Name: "counter.o", Class: hemlock.DynamicPublic},
//	        },
//	        LinkDir:     "/bin",
//	        DefaultPath: []string{"/lib"},
//	})
//	pg, _ := sys.Launch(res.Image, 0, nil)
//	v, _ := pg.Var("hits") // the shared variable, by name
//	v.Store(1)             // visible to every process that links counter.o
//
// The packages under internal/ implement the full substrate: a paged
// memory system, 32-bit address spaces, the 1 GB / 1024-inode shared file
// system with address↔path kernel calls, an R3000-like ISA with assembler
// and interpreter, the linkers, the user-level fault handler, and the
// paper's four application case studies (rwho, Presto, Lynx tables, xfig).
package hemlock

import (
	"io"

	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
)

// System is a booted Hemlock machine: kernel, shared file system, linkers.
type System = core.System

// Program is a launched process with its dynamic-linker state.
type Program = core.Program

// Var is language-level access to a named program object.
type Var = core.Var

// LinkOptions configures a static link (see lds.Options).
type LinkOptions = lds.Options

// Module names one linker input with its sharing class.
type Module = lds.Input

// LinkResult is a linked image plus warnings.
type LinkResult = lds.Result

// Image is a linked load image.
type Image = objfile.Image

// Object is a HEMO object module (template).
type Object = objfile.Object

// Class is a sharing class.
type Class = objfile.Class

// The four sharing classes of Table 1.
const (
	StaticPrivate  = objfile.StaticPrivate
	DynamicPrivate = objfile.DynamicPrivate
	StaticPublic   = objfile.StaticPublic
	DynamicPublic  = objfile.DynamicPublic
)

// New boots a fresh machine with an empty shared file system.
func New() *System { return core.NewSystem() }

// Load boots a machine from a disk image written by (*System).Save.
func Load(r io.Reader) (*System, error) { return core.Load(r) }

// NewBuilder constructs an object module programmatically (the alternative
// to assembling source with (*System).Asm).
func NewBuilder(name string) *objfile.Builder { return objfile.NewBuilder(name) }
